// Distance-oracle cache tests (ctest -L cache): the lease-aware LRU, the
// landmark-sketch triangle bounds, MS-BFS depth recording, and the
// end-to-end exactness contract — every cache-served answer must be
// bit-identical to what a fresh engine recompute would have returned,
// including after lease expiry (the differential layer), and a cached
// session must still replay bit-identically from its seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "bfs/runner.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/part1d.hpp"
#include "service/msbfs.hpp"
#include "service/oracle/lru.hpp"
#include "service/oracle/oracle.hpp"
#include "service/oracle/sketch.hpp"
#include "service/session.hpp"
#include "service/workload.hpp"
#include "sim/runtime.hpp"

namespace sunbfs::service {
namespace {

using graph::Graph500Config;
using graph::Vertex;

std::vector<graph::Edge> slice_of(const Graph500Config& cfg, int rank,
                                  int nranks) {
  uint64_t m = cfg.num_edges();
  return graph::generate_rmat_range(cfg, m * uint64_t(rank) / uint64_t(nranks),
                                    m * uint64_t(rank + 1) / uint64_t(nranks));
}

// ------------------------------------------------------- lease-aware LRU

TEST(LeaseLru, HitPromotesAndLeaseExpiryEvicts) {
  oracle::LeaseLru<int, int> lru(2);
  lru.insert(1, 10, /*expires_s=*/1.0, /*epoch=*/0);
  lru.insert(2, 20, 1.0, 0);
  ASSERT_EQ(lru.size(), 2u);

  uint64_t expired = 0;
  int* v = lru.find_live(1, /*now_s=*/0.5, 0, &expired);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 10);
  EXPECT_EQ(expired, 0u);

  // The lease is an absolute virtual-clock bound: at exactly expires_s the
  // entry is stale, self-evicts, and the expiry is counted.
  EXPECT_EQ(lru.find_live(2, 1.0, 0, &expired), nullptr);
  EXPECT_EQ(expired, 1u);
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LeaseLru, CapacityEvictsLeastRecentlyUsed) {
  oracle::LeaseLru<int, int> lru(2);
  lru.insert(1, 10, 9.0, 0);
  lru.insert(2, 20, 9.0, 0);
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(lru.find_live(1, 0.0, 0), nullptr);
  lru.insert(3, 30, 9.0, 0);
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru.find_live(2, 0.0, 0), nullptr);  // evicted, not expired
  ASSERT_NE(lru.find_live(1, 0.0, 0), nullptr);
  ASSERT_NE(lru.find_live(3, 0.0, 0), nullptr);
}

TEST(LeaseLru, OverwriteRenewsLeaseAndEpochMismatchEvicts) {
  oracle::LeaseLru<int, int> lru(2);
  lru.insert(1, 10, 1.0, 0);
  lru.insert(1, 11, 5.0, 0);  // overwrite renews the lease in place
  EXPECT_EQ(lru.size(), 1u);
  int* v = lru.find_live(1, 2.0, 0);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 11);

  // A reader at a newer graph epoch must not see the old artifact.
  uint64_t expired = 0;
  EXPECT_EQ(lru.find_live(1, 2.0, /*epoch=*/1, &expired), nullptr);
  EXPECT_EQ(expired, 1u);
  EXPECT_EQ(lru.size(), 0u);
}

// --------------------------------------------------- sketch bound algebra

TEST(LandmarkSketch, TriangleBoundsOnHandBuiltRows) {
  // A path 0-1-2-3-4 plus an isolated vertex 5; landmarks {0, 4}.
  //   depth(0, v) = v for v <= 4;  depth(4, v) = 4 - v.
  std::vector<int32_t> rows = {0,  1,  2,  3,  4,  oracle::kNoDepth,
                               4,  3,  2,  1,  0,  oracle::kNoDepth};
  oracle::LandmarkSketch sk;
  sk.install({Vertex(0), Vertex(4)}, rows, /*num_vertices=*/6);
  ASSERT_FALSE(sk.empty());
  EXPECT_EQ(sk.num_landmarks(), 2);

  // Endpoint IS a landmark: bounds collapse to the exact distance.
  auto p = sk.probe(Vertex(0), Vertex(3));
  EXPECT_TRUE(p.known_reachable);
  EXPECT_TRUE(p.exact_distance());
  EXPECT_EQ(p.lower, 3);
  EXPECT_EQ(p.upper, 3);

  // Interior pair: 1 and 3.  Via 0: |1-3|..1+3; via 4: |3-1|..3+1 — the
  // bounds close at [2, 4] -> lower 2, upper 4, reachable but not exact.
  p = sk.probe(Vertex(1), Vertex(3));
  EXPECT_TRUE(p.known_reachable);
  EXPECT_FALSE(p.known_unreachable);
  EXPECT_EQ(p.lower, 2);
  EXPECT_EQ(p.upper, 4);
  EXPECT_FALSE(p.exact_distance());
  EXPECT_TRUE(p.resolved());

  // u == v closes at 0 regardless of the rows.
  p = sk.probe(Vertex(5), Vertex(5));
  EXPECT_TRUE(p.exact_distance());
  EXPECT_EQ(p.upper, 0);

  // One endpoint in a landmark's component, the other not: on an undirected
  // graph that PROVES unreachability.
  p = sk.probe(Vertex(2), Vertex(5));
  EXPECT_TRUE(p.known_unreachable);
  EXPECT_FALSE(p.known_reachable);
  EXPECT_TRUE(p.exact_distance());
  EXPECT_TRUE(p.resolved());
}

// ------------------------------------------------ epoch invalidation

// A bumped graph epoch must close the sketch answer path immediately: after
// a mutation batch, triangle bounds built at the old epoch are never served
// — sketch_live flips false, sketch_due demands a refresh, probes fall
// through to the engines — until a sketch is reinstalled at the new epoch.
// Cached exact trees self-evict through the same epoch check on first touch.
TEST(OracleEpoch, BumpStopsSketchAndTreeAnswersUntilReinstall) {
  oracle::CacheConfig cc;
  cc.enabled = true;
  cc.landmarks = 2;
  cc.tree_capacity = 4;
  cc.tree_lease_s = 100.0;   // leases would outlive the test: only the
  cc.sketch_lease_s = 100.0; // epoch can invalidate anything here
  oracle::DistanceOracle oc(cc, /*num_vertices=*/6);

  // The path 0-1-2-3-4 plus isolated 5; landmarks {0, 4} (exact bounds for
  // any pair with a landmark endpoint).
  std::vector<int32_t> rows = {0, 1, 2, 3, 4, oracle::kNoDepth,
                               4, 3, 2, 1, 0, oracle::kNoDepth};
  oc.install_sketch({Vertex(0), Vertex(4)}, rows, /*now_s=*/0.0);
  oracle::CachedTree tree;
  tree.depth = {0, 1, 2, 3, 4, oracle::kNoDepth};
  tree.traversed_edges = 4;
  tree.levels = 4;
  oc.insert_tree(Vertex(0), tree, 0.0);

  Query q;
  q.kind = QueryKind::Distance;
  q.root = Vertex(4);
  q.target = Vertex(1);
  ASSERT_TRUE(oc.sketch_live(1.0));
  ASSERT_FALSE(oc.sketch_due(1.0));
  auto a = oc.probe(q, 1.0);
  ASSERT_TRUE(a.hit);
  EXPECT_TRUE(a.sketch);
  EXPECT_EQ(a.distance, 3);

  oc.bump_epoch();
  EXPECT_EQ(oc.epoch(), 1u);
  // The sketch stops answering at once — no probe needed to notice.
  EXPECT_FALSE(oc.sketch_live(1.0));
  EXPECT_TRUE(oc.sketch_due(1.0));
  a = oc.probe(q, 1.0);
  EXPECT_FALSE(a.hit) << "stale-epoch sketch served a triangle bound";

  // The stale tree is evicted (and counted) on its first post-bump touch.
  Query tq;
  tq.kind = QueryKind::Distance;
  tq.root = Vertex(0);
  tq.target = Vertex(2);
  const uint64_t expired_before = oc.stats().expired;
  a = oc.probe(tq, 1.0);
  EXPECT_FALSE(a.hit) << "stale-epoch tree served an answer";
  EXPECT_GT(oc.stats().expired, expired_before);
  EXPECT_EQ(oc.tree_count(), 0u);

  // Reinstalling at the current epoch reopens the answer path.
  oc.install_sketch({Vertex(0), Vertex(4)}, rows, 2.0);
  ASSERT_TRUE(oc.sketch_live(2.5));
  a = oc.probe(q, 2.5);
  ASSERT_TRUE(a.hit);
  EXPECT_EQ(a.distance, 3);
}

// ------------------------------------------- depth recording + soundness

struct SketchCase {
  uint64_t seed;
  int scale;
  int rows, cols;
  int landmarks;
  int threads;
};

class SketchSoundness : public ::testing::TestWithParam<SketchCase> {};

// One SPMD run records landmark depth rows through the real MS-BFS engine;
// the host then (1) pins every recorded depth against graph::reference_bfs
// and (2) checks the triangle-bound contract for sampled pairs: lower <=
// d(u,v) <= upper whenever reachability is known, and a "proven" verdict is
// never wrong.
TEST_P(SketchSoundness, RecordedDepthsExactAndBoundsSound) {
  const SketchCase c = GetParam();
  Graph500Config cfg;
  cfg.scale = c.scale;
  cfg.seed = c.seed;
  const sim::MeshShape mesh{c.rows, c.cols};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};

  std::vector<Vertex> landmarks;
  std::vector<int32_t> rows;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_1d(ctx, space, slice);
    auto keys = bfs::pick_search_keys(ctx, space, degrees, c.landmarks,
                                      c.seed ^ 0x5eed);
    MsbfsOptions opts;
    opts.threads_per_rank = c.threads;
    opts.record_depths = true;
    MsbfsResult r = msbfs_run(ctx, part, keys, opts);
    std::vector<size_t> off;
    auto gathered =
        ctx.world.allgatherv(std::span<const int32_t>(r.depth), &off);
    if (ctx.rank == 0) {
      landmarks = keys;
      rows = oracle::assemble_depth_rows(space, int(keys.size()), gathered,
                                         off);
    }
  });
  ASSERT_EQ(landmarks.size(), size_t(c.landmarks));
  ASSERT_EQ(rows.size(), landmarks.size() * cfg.num_vertices());

  // Layer 1: every recorded depth equals the serial reference's.
  auto edges = graph::generate_rmat(cfg);
  std::vector<std::vector<int64_t>> ref_depth(landmarks.size());
  for (size_t l = 0; l < landmarks.size(); ++l) {
    auto parent = graph::reference_bfs(cfg.num_vertices(), edges, landmarks[l]);
    ref_depth[l] =
        graph::levels_from_parents(cfg.num_vertices(), parent, landmarks[l]);
    for (uint64_t v = 0; v < cfg.num_vertices(); ++v)
      ASSERT_EQ(int64_t(rows[l * cfg.num_vertices() + v]), ref_depth[l][v])
          << "landmark " << landmarks[l] << " vertex " << v;
  }

  // Layer 2: triangle bounds against true distances from sampled sources.
  oracle::LandmarkSketch sk;
  sk.install(landmarks, rows, cfg.num_vertices());
  std::vector<Vertex> sources = {landmarks[0], Vertex(0), Vertex(1),
                                 Vertex(cfg.num_vertices() / 2),
                                 Vertex(cfg.num_vertices() - 1)};
  for (Vertex u : sources) {
    auto parent = graph::reference_bfs(cfg.num_vertices(), edges, u);
    auto dist = graph::levels_from_parents(cfg.num_vertices(), parent, u);
    for (uint64_t v = 0; v < cfg.num_vertices(); ++v) {
      const auto p = sk.probe(u, Vertex(v));
      const int64_t d = dist[v];  // -1 when unreachable
      if (p.known_unreachable)
        ASSERT_EQ(d, -1) << "false unreachable " << u << "->" << v;
      if (p.known_reachable) {
        ASSERT_GE(d, 0) << "false reachable " << u << "->" << v;
        ASSERT_LE(p.lower, d) << u << "->" << v;
        ASSERT_GE(p.upper, d) << u << "->" << v;
      }
      // An endpoint that IS a landmark always closes exactly.
      if (u == landmarks[0]) {
        ASSERT_TRUE(p.resolved()) << u << "->" << v;
        if (d >= 0) {
          ASSERT_TRUE(p.exact_distance());
          ASSERT_EQ(p.lower, d);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededConfigs, SketchSoundness,
    ::testing::Values(SketchCase{41, 9, 1, 2, 4, 1},
                      SketchCase{42, 9, 2, 2, 8, 2},
                      SketchCase{43, 10, 2, 2, 16, 4},
                      SketchCase{44, 10, 2, 3, 6, 2}));

// -------------------------------------- end-to-end differential exactness

ServiceConfig cached_service(int scale = 9) {
  ServiceConfig cfg;
  cfg.graph.scale = scale;
  cfg.graph.seed = 3;
  cfg.threads_per_rank = 2;
  cfg.root_pool = 16;
  cfg.cache.enabled = true;
  cfg.cache.tree_capacity = 8;
  cfg.cache.landmarks = 8;
  cfg.cache.tree_lease_s = 10.0;   // effectively no expiry at test makespans
  cfg.cache.sketch_lease_s = 10.0;
  return cfg;
}

WorkloadConfig mixed_zipf_workload(uint64_t seed, uint64_t n) {
  WorkloadConfig wl;
  wl.seed = seed;
  wl.num_queries = n;
  wl.rate_qps = 5000;
  wl.distance_fraction = 0.3;
  wl.reachable_fraction = 0.15;
  wl.root_dist = RootDist::Zipfian;
  wl.zipf_theta = 0.99;
  return wl;
}

// The acceptance criterion: with no deadlines every query completes, and a
// cache-served answer must be bit-identical to the cache-off engine answer
// for the same query id — distance, reachability, and (for BFS hits) the
// engine-grade traversed_edges/levels scalars too.
void expect_cache_exact(const ServiceConfig& cached_cfg, uint64_t wl_seed) {
  ServiceConfig plain_cfg = cached_cfg;
  plain_cfg.cache = oracle::CacheConfig{};  // disabled
  const sim::Topology topo(sim::MeshShape{2, 2});
  ServiceReport on =
      GraphSession(topo, cached_cfg).serve(mixed_zipf_workload(wl_seed, 48),
                                           BrokerConfig{});
  ServiceReport off =
      GraphSession(topo, plain_cfg).serve(mixed_zipf_workload(wl_seed, 48),
                                          BrokerConfig{});
  ASSERT_TRUE(on.spmd.ok());
  ASSERT_TRUE(off.spmd.ok());
  EXPECT_EQ(on.completed, 48u);
  EXPECT_EQ(off.completed, 48u);
  EXPECT_GT(on.cache.hits, 0u) << "cache never hit; differential is vacuous";
  EXPECT_EQ(off.cache.probes, 0u);

  std::map<uint64_t, const QueryResult*> baseline;
  for (const auto& r : off.results) baseline[r.id] = &r;
  uint64_t hits_seen = 0;
  for (const auto& r : on.results) {
    auto it = baseline.find(r.id);
    ASSERT_NE(it, baseline.end()) << "query " << r.id;
    const QueryResult& b = *it->second;
    ASSERT_EQ(r.kind, b.kind) << "query " << r.id;
    EXPECT_EQ(r.status, b.status) << "query " << r.id;
    EXPECT_EQ(r.root, b.root) << "query " << r.id;
    EXPECT_EQ(r.target, b.target) << "query " << r.id;
    EXPECT_EQ(r.distance, b.distance)
        << "query " << r.id << (r.cache_hit ? " (cache hit)" : "");
    EXPECT_EQ(r.reachable, b.reachable)
        << "query " << r.id << (r.cache_hit ? " (cache hit)" : "");
    EXPECT_EQ(r.traversed_edges, b.traversed_edges)
        << "query " << r.id << (r.cache_hit ? " (cache hit)" : "");
    EXPECT_EQ(r.levels, b.levels)
        << "query " << r.id << (r.cache_hit ? " (cache hit)" : "");
    if (r.cache_hit) ++hits_seen;
  }
  EXPECT_EQ(hits_seen, on.cache.hits);
}

TEST(OracleDifferential, CachedAnswersBitIdenticalToEngine) {
  expect_cache_exact(cached_service(), /*wl_seed=*/51);
}

TEST(OracleDifferential, ExactAfterLeaseExpiryChurn) {
  // Tiny leases: artifacts expire between most probes, forcing constant
  // eviction + sketch refresh churn.  Exactness must survive it, and the
  // expiry/refresh counters must actually move.
  ServiceConfig cfg = cached_service();
  cfg.cache.tree_lease_s = 2e-4;
  cfg.cache.sketch_lease_s = 2e-4;
  const sim::Topology topo(sim::MeshShape{2, 2});
  ServiceReport churn =
      GraphSession(topo, cfg).serve(mixed_zipf_workload(52, 48),
                                    BrokerConfig{});
  ASSERT_TRUE(churn.spmd.ok());
  EXPECT_GT(churn.cache.expired, 0u);
  EXPECT_GT(churn.cache.refreshes, 1u);
  expect_cache_exact(cfg, /*wl_seed=*/52);
}

TEST(OracleDifferential, TerminalPartitionHoldsWithCache) {
  // Hits bypass the broker queue entirely; the terminal accounting identity
  // (completed + expired + rejected + shed + failed == submitted) must
  // still hold, with hits counted as completions.
  const sim::Topology topo(sim::MeshShape{2, 2});
  WorkloadConfig wl = mixed_zipf_workload(53, 64);
  wl.deadline_s = 0.02;
  ServiceReport r = GraphSession(topo, cached_service()).serve(wl,
                                                               BrokerConfig{});
  ASSERT_TRUE(r.spmd.ok());
  EXPECT_EQ(r.completed + r.expired_total() + r.rejected + r.shed + r.failed,
            r.submitted);
  EXPECT_EQ(r.results.size(), r.submitted);
}

TEST(OracleDifferential, DeterministicReplayWithCacheOn) {
  const sim::Topology topo(sim::MeshShape{2, 2});
  GraphSession session(topo, cached_service());
  WorkloadConfig wl = mixed_zipf_workload(54, 40);
  ServiceReport a = session.serve(wl, BrokerConfig{});
  ServiceReport b = session.serve(wl, BrokerConfig{});
  ASSERT_TRUE(a.spmd.ok());
  ASSERT_TRUE(b.spmd.ok());
  EXPECT_GT(a.cache.hits, 0u);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.probes, b.cache.probes);
  EXPECT_EQ(a.cache.refreshes, b.cache.refreshes);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    const auto& x = a.results[i];
    const auto& y = b.results[i];
    EXPECT_EQ(x.id, y.id) << "result " << i;
    EXPECT_EQ(x.status, y.status);
    EXPECT_EQ(x.cache_hit, y.cache_hit);
    EXPECT_EQ(x.distance, y.distance);
    EXPECT_EQ(x.reachable, y.reachable);
    EXPECT_EQ(x.done_s, y.done_s);
    EXPECT_EQ(x.latency_s, y.latency_s);
    EXPECT_EQ(x.traversed_edges, y.traversed_edges);
    EXPECT_EQ(x.levels, y.levels);
  }
}

TEST(OracleDifferential, CacheOffPathUnchangedByPointQueries) {
  // The point-to-point kinds must work without any cache (the bench's
  // ablation leg): distances come from the engine depth rows directly.
  ServiceConfig cfg = cached_service();
  cfg.cache = oracle::CacheConfig{};  // disabled
  const sim::Topology topo(sim::MeshShape{2, 2});
  ServiceReport r = GraphSession(topo, cfg).serve(mixed_zipf_workload(55, 32),
                                                  BrokerConfig{});
  ASSERT_TRUE(r.spmd.ok());
  EXPECT_EQ(r.completed, 32u);
  uint64_t point = 0;
  for (const auto& q : r.results) {
    EXPECT_FALSE(q.cache_hit);
    if (q.kind == QueryKind::Distance) {
      ++point;
      // Bit-identity convention: point results carry no per-tree scalars.
      EXPECT_EQ(q.traversed_edges, 0u);
      EXPECT_EQ(q.levels, 0);
      EXPECT_EQ(q.reachable, q.distance >= 0);
    } else if (q.kind == QueryKind::Reachable) {
      ++point;
      EXPECT_EQ(q.distance, -1);
    }
  }
  EXPECT_GT(point, 0u);
}

}  // namespace
}  // namespace sunbfs::service
