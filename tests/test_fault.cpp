// Fault-injection framework tests: deterministic plans, payload checksums,
// per-collective corruption detection, policy semantics (abort / report /
// recover), multi-rank error collection, and end-to-end checkpointed BFS
// recovery that must reproduce the fault-free parent array bit for bit.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <span>
#include <utility>

#include "bfs/bfs15d.hpp"
#include "bfs/bfs1d.hpp"
#include "bfs/runner.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/part15d.hpp"
#include "partition/part1d.hpp"
#include "sim/fault.hpp"
#include "sim/runtime.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace sunbfs::sim {
namespace {

using graph::Edge;
using graph::Graph500Config;
using graph::Vertex;
using graph::kNoVertex;

// ---- checksum / plan / backoff primitives ----------------------------------

TEST(Checksum, DistinguishesPayloads) {
  uint64_t a[4] = {1, 2, 3, 4};
  uint64_t sum = checksum64(a, sizeof(a));
  EXPECT_EQ(checksum64(a, sizeof(a)), sum);  // deterministic
  a[2] ^= 0x10;                              // one flipped bit
  EXPECT_NE(checksum64(a, sizeof(a)), sum);
  a[2] ^= 0x10;
  EXPECT_NE(checksum64(a, sizeof(a) - 1), sum);  // truncation detected
  EXPECT_EQ(checksum64(a, sizeof(a)), sum);      // restored
  EXPECT_EQ(checksum64(nullptr, 0), checksum64(nullptr, 0));
}

TEST(FaultPlanTest, QueriesMatchExactKeys) {
  FaultPlan plan;
  plan.add_straggler(1, CollectiveType::Allreduce, 3, 1e-3)
      .add_bitflip(2, CollectiveType::Alltoallv, 5)
      .add_rank_failure(0, 2);
  EXPECT_NE(plan.straggler(1, CollectiveType::Allreduce, 3), nullptr);
  EXPECT_EQ(plan.straggler(1, CollectiveType::Allreduce, 4), nullptr);
  EXPECT_EQ(plan.straggler(0, CollectiveType::Allreduce, 3), nullptr);
  EXPECT_NE(plan.payload(2, CollectiveType::Alltoallv, 5), nullptr);
  EXPECT_EQ(plan.payload(2, CollectiveType::Allgather, 5), nullptr);
  ASSERT_EQ(plan.rank_failures().size(), 1u);
  EXPECT_EQ(plan.rank_failures()[0].level, 2);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlanTest, RandomIsDeterministic) {
  FaultPlan a = FaultPlan::random(9, 8, 2, 3, 1);
  FaultPlan b = FaultPlan::random(9, 8, 2, 3, 1);
  EXPECT_EQ(a.to_string(), b.to_string());
  FaultPlan c = FaultPlan::random(10, 8, 2, 3, 1);
  EXPECT_NE(a.to_string(), c.to_string());
  EXPECT_EQ(a.rank_failures().size(), 1u);
}

TEST(Backoff, ExponentialAndCapped) {
  RecoveryOptions r;
  r.backoff_base_s = 1e-3;
  r.backoff_cap_s = 4e-3;
  EXPECT_DOUBLE_EQ(backoff_delay_s(r, 1), 1e-3);
  EXPECT_DOUBLE_EQ(backoff_delay_s(r, 2), 2e-3);
  EXPECT_DOUBLE_EQ(backoff_delay_s(r, 3), 4e-3);
  EXPECT_DOUBLE_EQ(backoff_delay_s(r, 7), 4e-3);  // capped
}

// ---- per-collective corruption detection -----------------------------------

/// Run `body` on a 1xN mesh under `plan` / `policy` and return the report.
/// Bodies are armed from the start (FaultState::armed defaults to true).
SpmdReport run_with_plan(int nranks, const FaultPlan& plan, FaultPolicy policy,
                         const std::function<void(RankContext&)>& body) {
  Topology topo(MeshShape{1, nranks});
  SpmdOptions opts;
  opts.policy = policy;
  opts.faults = &plan;
  return run_spmd(topo, body, opts);
}

TEST(FaultDetect, AllreduceBitFlipReported) {
  FaultPlan plan;
  plan.add_bitflip(1, CollectiveType::Allreduce, 0);
  auto report = run_with_plan(4, plan, FaultPolicy::Report,
                              [&](RankContext& ctx) {
                                ctx.world.allreduce_sum(uint64_t(ctx.rank));
                              });
  EXPECT_FALSE(report.ok());
  auto f = report.fault_totals();
  EXPECT_EQ(f.injected_corruptions, 1u);
  EXPECT_GE(f.detected, 1u);
  // The error names the corrupting and detecting ranks.
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors[0].find("from rank 1"), std::string::npos)
      << report.errors[0];
}

TEST(FaultDetect, AllreduceBitFlipAbortThrows) {
  FaultPlan plan;
  plan.add_bitflip(0, CollectiveType::Allreduce, 0);
  EXPECT_THROW(run_with_plan(4, plan, FaultPolicy::Abort,
                             [&](RankContext& ctx) {
                               ctx.world.allreduce_sum(uint64_t(ctx.rank));
                             }),
               FaultDetected);
}

TEST(FaultDetect, AllgatherBitFlipReported) {
  FaultPlan plan;
  plan.add_bitflip(2, CollectiveType::Allgather, 0);
  auto report = run_with_plan(4, plan, FaultPolicy::Report,
                              [&](RankContext& ctx) {
                                ctx.world.allgather(uint64_t(ctx.rank) + 7);
                              });
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.fault_totals().injected_corruptions, 1u);
  EXPECT_GE(report.fault_totals().detected, 1u);
}

TEST(FaultDetect, AllgathervTruncateReported) {
  FaultPlan plan;
  plan.add_truncate(1, CollectiveType::Allgather, 0);
  auto report = run_with_plan(
      4, plan, FaultPolicy::Report, [&](RankContext& ctx) {
        std::vector<uint64_t> mine(size_t(ctx.rank) + 1, uint64_t(ctx.rank));
        ctx.world.allgatherv(std::span<const uint64_t>(mine));
      });
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.fault_totals().detected, 1u);
}

TEST(FaultDetect, AlltoallvBitFlipDetectedByTargetPeer) {
  FaultPlan plan;
  plan.add_bitflip(0, CollectiveType::Alltoallv, 0, /*peer=*/2);
  auto report = run_with_plan(
      4, plan, FaultPolicy::Report, [&](RankContext& ctx) {
        std::vector<std::vector<uint64_t>> to(4);
        for (int d = 0; d < 4; ++d)
          to[size_t(d)] = {uint64_t(ctx.rank * 10 + d)};
        ctx.world.alltoallv(to);
      });
  EXPECT_FALSE(report.ok());
  auto f = report.fault_totals();
  EXPECT_EQ(f.injected_corruptions, 1u);
  // Point-to-point corruption: only the addressed peer sees the mismatch.
  EXPECT_EQ(f.detected, 1u);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("rank 2"), std::string::npos);
}

TEST(FaultDetect, ReduceScatterBitFlipReported) {
  FaultPlan plan;
  plan.add_bitflip(1, CollectiveType::ReduceScatter, 0);
  auto report = run_with_plan(
      4, plan, FaultPolicy::Report, [&](RankContext& ctx) {
        std::vector<uint64_t> contrib(8, uint64_t(ctx.rank));
        ctx.world.reduce_scatter_block(
            std::span<const uint64_t>(contrib), 2,
            [](uint64_t a, uint64_t b) { return a + b; });
      });
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.fault_totals().detected, 1u);
}

TEST(FaultDetect, AllreduceInplaceBitFlipReported) {
  FaultPlan plan;
  plan.add_bitflip(3, CollectiveType::Allreduce, 0);
  auto report = run_with_plan(
      4, plan, FaultPolicy::Report, [&](RankContext& ctx) {
        std::vector<uint64_t> words(16, uint64_t(1) << ctx.rank);
        ctx.world.allreduce_inplace(std::span<uint64_t>(words),
                                    [](uint64_t a, uint64_t b) {
                                      return a | b;
                                    });
      });
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.fault_totals().detected, 1u);
}

TEST(FaultDetect, BroadcastBitFlipReported) {
  FaultPlan plan;
  plan.add_bitflip(0, CollectiveType::Broadcast, 0);
  auto report = run_with_plan(
      4, plan, FaultPolicy::Report, [&](RankContext& ctx) {
        std::vector<uint64_t> data(4, ctx.rank == 0 ? 42u : 0u);
        ctx.world.broadcast(std::span<uint64_t>(data), 0);
      });
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.fault_totals().detected, 1u);
}

TEST(FaultDetect, StragglerDelaysButDoesNotFail) {
  FaultPlan plan;
  plan.add_straggler(1, CollectiveType::Allreduce, 0, 2e-3);
  auto report = run_with_plan(4, plan, FaultPolicy::Report,
                              [&](RankContext& ctx) {
                                uint64_t s =
                                    ctx.world.allreduce_sum(uint64_t(1));
                                EXPECT_EQ(s, 4u);
                              });
  EXPECT_TRUE(report.ok());
  auto f = report.fault_totals();
  EXPECT_EQ(f.injected_stragglers, 1u);
  EXPECT_GE(f.straggler_delay_s, 2e-3);
  EXPECT_EQ(f.detected, 0u);
}

TEST(FaultDetect, ChecksumsRecordedIntoCommStats) {
  FaultPlan plan;  // installed but empty: checksums on (Auto), nothing fires
  auto report = run_with_plan(4, plan, FaultPolicy::Report,
                              [&](RankContext& ctx) {
                                ctx.world.allreduce_sum(uint64_t(ctx.rank));
                              });
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.aggregate().checksums_verified(), 0u);
  EXPECT_EQ(report.aggregate().checksum_mismatches(), 0u);
}

// ---- size assertions without checksums (the bugfix surface) ----------------

TEST(FaultDetect, TruncationWithoutChecksumsTripsSizeCheck) {
  // With checksums forced off, a truncated alltoallv payload must still be
  // rejected by the received-size/divisibility assertions, naming both ranks.
  FaultPlan plan;
  plan.add_truncate(1, CollectiveType::Alltoallv, 0, /*peer=*/0);
  Topology topo(MeshShape{1, 4});
  SpmdOptions opts;
  opts.policy = FaultPolicy::Abort;
  opts.faults = &plan;
  opts.checksums = ChecksumMode::Off;
  try {
    run_spmd(
        topo,
        [&](RankContext& ctx) {
          std::vector<std::vector<uint64_t>> to(4);
          for (int d = 0; d < 4; ++d)
            to[size_t(d)] = {uint64_t(ctx.rank), uint64_t(d)};
          ctx.world.alltoallv(to);
        },
        opts);
    FAIL() << "truncated payload was accepted";
  } catch (const CheckError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;  // sender
    EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;  // receiver
  }
}

TEST(FaultDetect, AllgathervTruncationWithoutChecksumsTripsSizeCheck) {
  FaultPlan plan;
  plan.add_truncate(2, CollectiveType::Allgather, 0);
  Topology topo(MeshShape{1, 4});
  SpmdOptions opts;
  opts.policy = FaultPolicy::Abort;
  opts.faults = &plan;
  opts.checksums = ChecksumMode::Off;
  EXPECT_THROW(run_spmd(
                   topo,
                   [&](RankContext& ctx) {
                     std::vector<uint64_t> mine(3, uint64_t(ctx.rank));
                     ctx.world.allgatherv(std::span<const uint64_t>(mine));
                   },
                   opts),
               CheckError);
}

// ---- multi-rank error collection (the run_spmd bugfix) ---------------------

TEST(SpmdErrors, EveryFailingRankMessageCollected) {
  Topology topo(MeshShape{1, 4});
  SpmdOptions opts;
  opts.policy = FaultPolicy::Report;
  auto report = run_spmd(
      topo,
      [&](RankContext& ctx) {
        if (ctx.rank == 1) throw std::runtime_error("boom on one");
        if (ctx.rank == 3) throw std::runtime_error("boom on three");
        // Other ranks park in a barrier and get aborted.
        ctx.world.barrier();
        ctx.world.barrier();
      },
      opts);
  ASSERT_EQ(report.errors.size(), 2u);
  EXPECT_NE(report.errors[0].find("rank 1: boom on one"), std::string::npos);
  EXPECT_NE(report.errors[1].find("rank 3: boom on three"), std::string::npos);
  EXPECT_FALSE(report.ok());
}

TEST(SpmdErrors, AbortPolicyStillRethrows) {
  Topology topo(MeshShape{1, 2});
  EXPECT_THROW(
      run_spmd(topo,
               [&](RankContext& ctx) {
                 if (ctx.rank == 0) throw std::runtime_error("first");
                 ctx.world.barrier();
               }),
      std::runtime_error);
}

// ---- recover policy: drops stay consistent ---------------------------------

TEST(FaultRecover, AllreduceDropIsReplicatedAcrossRanks) {
  FaultPlan plan;
  plan.add_bitflip(1, CollectiveType::Allreduce, 0);
  std::array<uint64_t, 4> sums{};
  auto report = run_with_plan(4, plan, FaultPolicy::Recover,
                              [&](RankContext& ctx) {
                                sums[size_t(ctx.rank)] =
                                    ctx.world.allreduce_sum(uint64_t(100));
                                EXPECT_TRUE(ctx.faults.take_pending());
                              });
  EXPECT_TRUE(report.ok());  // nothing threw; detection was deferred
  // Every rank folded the same surviving contributions (rank 1 dropped).
  for (int r = 0; r < 4; ++r) EXPECT_EQ(sums[size_t(r)], 300u);
  EXPECT_GE(report.fault_totals().detected, 1u);
}

TEST(FaultRecover, AlltoallvDropAppearsEmptyOnlyAtTarget) {
  FaultPlan plan;
  plan.add_bitflip(0, CollectiveType::Alltoallv, 0, /*peer=*/1);
  std::array<size_t, 4> received{};
  auto report = run_with_plan(
      4, plan, FaultPolicy::Recover, [&](RankContext& ctx) {
        std::vector<std::vector<uint64_t>> to(4);
        for (int d = 0; d < 4; ++d) to[size_t(d)] = {uint64_t(ctx.rank)};
        received[size_t(ctx.rank)] = ctx.world.alltoallv(to).size();
      });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(received[1], 3u);  // rank 0's corrupted message dropped
  EXPECT_EQ(received[0], 4u);
  EXPECT_EQ(received[2], 4u);
  EXPECT_EQ(received[3], 4u);
}

// ---- end-to-end: resilient checkpointed BFS --------------------------------

std::vector<Edge> slice_of(const Graph500Config& cfg, int rank, int nranks) {
  uint64_t m = cfg.num_edges();
  return graph::generate_rmat_range(cfg, m * uint64_t(rank) / uint64_t(nranks),
                                    m * uint64_t(rank + 1) / uint64_t(nranks));
}

Vertex pick_root(const Graph500Config& cfg) {
  auto edges = graph::generate_rmat_range(cfg, 0, 1);
  return edges[0].u;
}

/// Run the 1.5D engine under `options` and return the assembled global
/// parent array (empty when the run failed).
std::vector<Vertex> run_15d_parents(const Graph500Config& cfg,
                                    sim::MeshShape mesh, Vertex root,
                                    const SpmdOptions& options,
                                    FaultStats* totals = nullptr,
                                    const bfs::Bfs15dOptions& bfs_opts = {}) {
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  partition::DegreeThresholds th;
  th.e = 2048;
  th.h = 64;
  std::vector<Vertex> global_parent;
  Topology topo(mesh);
  auto report = run_spmd(
      topo,
      [&](sim::RankContext& ctx) {
        ctx.faults.armed = false;  // setup runs fault-free, as in the runner
        auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
        auto deg = partition::compute_local_degrees(ctx, space, slice);
        auto part = partition::build_15d(ctx, space, slice, deg, th);
        ctx.faults.armed = true;
        auto res = bfs::bfs15d_run(ctx, part, root, bfs_opts);
        ctx.faults.armed = false;
        auto gathered =
            ctx.world.allgatherv(std::span<const Vertex>(res.parent));
        if (ctx.rank == 0) global_parent = std::move(gathered);
      },
      options);
  if (totals) *totals = report.fault_totals();
  if (!report.ok()) return {};
  return global_parent;
}

TEST(FaultRecovery, RankFailureAtLevelTwoRecoversBitForBit) {
  Graph500Config cfg;
  cfg.scale = 14;
  cfg.seed = 5;
  sim::MeshShape mesh{2, 2};
  Vertex root = pick_root(cfg);

  auto clean = run_15d_parents(cfg, mesh, root, SpmdOptions{});
  ASSERT_FALSE(clean.empty());

  FaultPlan plan;
  plan.add_rank_failure(1, 2);
  SpmdOptions opts;
  opts.policy = FaultPolicy::Recover;
  opts.faults = &plan;
  FaultStats totals;
  auto recovered = run_15d_parents(cfg, mesh, root, opts, &totals);
  ASSERT_FALSE(recovered.empty());

  EXPECT_EQ(totals.injected_failures, 1u);
  EXPECT_GT(totals.retries, 0u);
  EXPECT_GT(totals.recovered, 0u);
  EXPECT_GT(totals.backoff_s, 0.0);

  // The recovered run must be indistinguishable from the fault-free one.
  ASSERT_EQ(clean.size(), recovered.size());
  EXPECT_EQ(clean, recovered);
  auto edges = graph::generate_rmat(cfg);
  auto v = graph::validate_bfs(cfg.num_vertices(), edges, root, recovered);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(FaultRecovery, CorruptionMidSearchRecoversBitForBit) {
  Graph500Config cfg;
  cfg.scale = 12;
  cfg.seed = 11;
  sim::MeshShape mesh{2, 2};
  Vertex root = pick_root(cfg);

  auto clean = run_15d_parents(cfg, mesh, root, SpmdOptions{});
  ASSERT_FALSE(clean.empty());

  FaultPlan plan;
  plan.add_bitflip(0, CollectiveType::Alltoallv, 1)
      .add_truncate(2, CollectiveType::Allgather, 2);
  SpmdOptions opts;
  opts.policy = FaultPolicy::Recover;
  opts.faults = &plan;
  FaultStats totals;
  auto recovered = run_15d_parents(cfg, mesh, root, opts, &totals);
  ASSERT_FALSE(recovered.empty());
  EXPECT_GE(totals.injected_corruptions, 1u);
  EXPECT_GE(totals.detected, 1u);
  EXPECT_EQ(clean, recovered);
}

TEST(FaultRecovery, Bfs1dRankFailureRecovers) {
  Graph500Config cfg;
  cfg.scale = 12;
  cfg.seed = 7;
  sim::MeshShape mesh{2, 2};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  Vertex root = pick_root(cfg);

  FaultPlan plan;
  plan.add_rank_failure(2, 2);
  SpmdOptions opts;
  opts.policy = FaultPolicy::Recover;
  opts.faults = &plan;
  std::vector<Vertex> global_parent;
  Topology topo(mesh);
  auto report = run_spmd(
      topo,
      [&](sim::RankContext& ctx) {
        ctx.faults.armed = false;
        auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
        auto part = partition::build_1d(ctx, space, slice);
        ctx.faults.armed = true;
        auto res = bfs::bfs1d_run(ctx, part, root, {});
        ctx.faults.armed = false;
        auto gathered =
            ctx.world.allgatherv(std::span<const Vertex>(res.parent));
        if (ctx.rank == 0) global_parent = std::move(gathered);
      },
      opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.fault_totals().injected_failures, 1u);
  EXPECT_GT(report.fault_totals().retries, 0u);
  auto edges = graph::generate_rmat(cfg);
  auto v = graph::validate_bfs(cfg.num_vertices(), edges, root, global_parent);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(FaultRecovery, RetriesExhaustedGivesUp) {
  // A plan whose corruption re-fires on every replayed call index can't
  // happen (faults are one-shot), but a failing rank with max_retries = 0
  // exhausts the budget immediately.
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 3;
  sim::MeshShape mesh{1, 2};
  Vertex root = pick_root(cfg);
  FaultPlan plan;
  plan.add_rank_failure(0, 1);
  SpmdOptions opts;
  opts.policy = FaultPolicy::Recover;
  opts.faults = &plan;
  bfs::Bfs15dOptions bopts;
  bopts.recovery.max_retries = 0;
  FaultStats totals;
  auto parents = run_15d_parents(cfg, mesh, root, opts, &totals, bopts);
  EXPECT_TRUE(parents.empty());  // recovery gave up; errors reported
}

// ---- fault-free runs must not change ---------------------------------------

TEST(FaultFree, RecoverPolicyWithoutPlanIsFree) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 2;
  sim::MeshShape mesh{2, 2};
  Vertex root = pick_root(cfg);

  auto baseline = run_15d_parents(cfg, mesh, root, SpmdOptions{});
  SpmdOptions opts;
  opts.policy = FaultPolicy::Recover;  // no plan installed
  auto with_policy = run_15d_parents(cfg, mesh, root, opts);
  EXPECT_EQ(baseline, with_policy);
}

TEST(FaultFree, ModeledCommUnchangedByFaultMachinery) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 2;
  sim::MeshShape mesh{2, 2};
  Topology topo(mesh);
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  Vertex root = pick_root(cfg);
  auto run_once = [&](const SpmdOptions& o) {
    auto report = run_spmd(
        topo,
        [&](sim::RankContext& ctx) {
          auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
          auto deg = partition::compute_local_degrees(ctx, space, slice);
          partition::DegreeThresholds th;
          auto part = partition::build_15d(ctx, space, slice, deg, th);
          bfs::bfs15d_run(ctx, part, root, {});
        },
        o);
    return report.modeled_comm_s();
  };
  double plain = run_once(SpmdOptions{});
  SpmdOptions recover;
  recover.policy = FaultPolicy::Recover;  // no plan: checksums stay off
  EXPECT_DOUBLE_EQ(plain, run_once(recover));
}

// ---- acceptance scenario ----------------------------------------------------

TEST(FaultAcceptance, SeededPlanAtScale16RecoversAndValidates) {
  bfs::RunnerConfig cfg;
  cfg.graph.scale = 16;
  cfg.graph.seed = 1;
  cfg.num_roots = 1;
  cfg.validate = true;
  sim::MeshShape mesh{2, 2};
  Topology topo(mesh);
  // Straggler + two corruptions + one rank failure, per the fault drill.
  FaultPlan plan = FaultPlan::random(12, mesh.ranks(), 1, 2, 1);
  cfg.faults = &plan;
  cfg.fault_policy = FaultPolicy::Recover;

  auto result = bfs::run_graph500(topo, cfg);
  EXPECT_TRUE(result.spmd.ok());
  EXPECT_TRUE(result.all_valid);
  auto f = result.spmd.fault_totals();
  EXPECT_GE(f.injected(), 2u);
  EXPECT_GT(f.retries, 0u);
  EXPECT_GT(f.recovered, 0u);
  EXPECT_GT(f.backoff_s, 0.0);

  // The same plan under the abort policy fails deterministically.
  cfg.fault_policy = FaultPolicy::Abort;
  EXPECT_THROW(bfs::run_graph500(topo, cfg), std::runtime_error);
  cfg.fault_policy = FaultPolicy::Abort;
  EXPECT_THROW(bfs::run_graph500(topo, cfg), std::runtime_error);
}

// ---- kernel-2 validator property: corrupted parents are rejected -----------

TEST(ValidationProperty, SingleFlippedParentEntryIsRejected) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 13;
  auto edges = graph::generate_rmat(cfg);
  Vertex root = pick_root(cfg);
  auto parent = graph::reference_bfs(cfg.num_vertices(), edges, root);
  ASSERT_TRUE(
      graph::validate_bfs(cfg.num_vertices(), edges, root, parent).ok);
  auto levels = graph::levels_from_parents(cfg.num_vertices(), parent, root);

  std::set<std::pair<Vertex, Vertex>> edge_set;
  for (const auto& e : edges) {
    edge_set.emplace(e.u, e.v);
    edge_set.emplace(e.v, e.u);
  }

  Xoshiro256StarStar rng(99);
  int tested = 0;
  for (int attempt = 0; attempt < 2000 && tested < 25; ++attempt) {
    Vertex v = Vertex(rng.next_below(cfg.num_vertices()));
    if (v == root || parent[size_t(v)] == kNoVertex) continue;
    Vertex bogus = Vertex(rng.next_below(cfg.num_vertices()));
    if (bogus == parent[size_t(v)] || bogus == v) continue;
    // Skip flips that happen to form a different but genuinely valid BFS
    // tree: the bogus parent is adjacent to v and one level above it.
    if (edge_set.count({bogus, v}) && levels[size_t(bogus)] >= 0 &&
        levels[size_t(bogus)] == levels[size_t(v)] - 1)
      continue;
    Vertex saved = parent[size_t(v)];
    parent[size_t(v)] = bogus;
    auto res = graph::validate_bfs(cfg.num_vertices(), edges, root, parent);
    EXPECT_FALSE(res.ok) << "flip parent[" << v << "] = " << bogus
                         << " was accepted";
    parent[size_t(v)] = saved;
    ++tested;
  }
  EXPECT_GE(tested, 10);
}

}  // namespace
}  // namespace sunbfs::sim
