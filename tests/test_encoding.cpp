// Adaptive wire-encoding tests (ctest -L encoding): property-based codec
// round-trips for every WireFormat message type and the frontier word
// streams, adversarial truncation/corruption rejection, the A2aStaging
// encoded exchange against the raw exchange inside a live SPMD session, and
// the CommStats encoding histogram plumbing.  The fault-injection case at
// the bottom (also under -L faults) pins the checksums-cover-encoded-bytes
// guarantee end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "analytics/delta_stepping.hpp"
#include "bfs/messages.hpp"
#include "bfs/runner.hpp"
#include "obs/metrics.hpp"
#include "service/msbfs.hpp"
#include "sim/comm_buffer.hpp"
#include "sim/encoding.hpp"
#include "sim/runtime.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"

namespace sunbfs::sim {
namespace {

// ------------------------------------------------------- varint primitives

TEST(Varint, RoundTripsBoundaryValues) {
  const uint64_t values[] = {0,       1,         0x7f,      0x80,
                             0x3fff,  0x4000,    0x1fffff,  0x200000,
                             1u << 28, 1ull << 35, 1ull << 56, UINT64_MAX};
  for (uint64_t v : values) {
    uint8_t buf[16] = {};
    uint8_t* end = put_varint(buf, v);
    EXPECT_EQ(size_t(end - buf), varint_size(v)) << v;
    uint64_t back = ~v;
    const uint8_t* p = get_varint(buf, end, &back);
    EXPECT_EQ(p, end) << v;
    EXPECT_EQ(back, v);
    // Every strict prefix is a truncation.
    for (const uint8_t* cut = buf; cut < end; ++cut)
      EXPECT_EQ(get_varint(buf, cut, &back), nullptr) << v;
  }
}

TEST(Varint, RejectsOverlongEncoding) {
  // Eleven continuation bytes never terminate within 64 bits.
  uint8_t buf[11];
  std::memset(buf, 0x80, sizeof buf);
  uint64_t out = 0;
  EXPECT_EQ(get_varint(buf, buf + sizeof buf, &out), nullptr);
}

TEST(Varint, ZigzagRoundTripsSignedExtremes) {
  const int64_t values[] = {0, 1, -1, 63, -64, INT64_MAX, INT64_MIN};
  for (int64_t v : values) {
    EXPECT_EQ(unzigzag(zigzag(v)), v) << v;
    if (v >= -64 && v <= 63) {
      EXPECT_LE(varint_size(zigzag(v)), size_t(1));
    }
  }
}

// ------------------------------------------------ message-block round trips

// Field tuples give padding-safe equality across all four wire types.
auto fields(const bfs::VisitMsg& m) { return std::tuple(m.dst, m.parent); }
auto fields(const bfs::CompactMsg& m) { return std::tuple(m.dst, m.src); }
auto fields(const service::MsbfsMsg& m) {
  return std::tuple(m.dst, m.src, m.mask);
}
auto fields(const analytics::DistMsg& m) { return std::tuple(m.dst, m.dist); }

template <typename T>
void expect_same(const std::vector<T>& want, const std::vector<T>& got,
                 const char* what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(fields(want[i]), fields(got[i])) << what << " at " << i;
}

template <typename T>
std::vector<uint8_t> encode_planned(std::vector<T>& msgs, BlockPlan* plan) {
  std::sort(msgs.begin(), msgs.end(), WireFormat<T>::less);
  *plan = plan_block<T>(msgs, /*sorted=*/true);
  std::vector<uint8_t> buf(plan->bytes);
  uint8_t* end = write_block<T>(msgs, plan->codec, buf.data());
  EXPECT_EQ(size_t(end - buf.data()), buf.size());
  return buf;
}

template <typename T>
bool decode_buf(std::span<const uint8_t> buf, std::vector<T>* out) {
  BlockHeader h;
  if (!read_block_header(buf.data(), buf.size(), &h)) return false;
  out->assign(size_t(h.count), T{});
  return decode_block<T>(h, buf.data() + buf.size(), out->data());
}

// Sort, plan, encode, decode, and require exact message equality; returns
// the codec the planner picked.
template <typename T>
WireCodec roundtrip(std::vector<T> msgs, const char* what) {
  BlockPlan plan;
  std::vector<uint8_t> buf = encode_planned(msgs, &plan);
  std::vector<T> back;
  EXPECT_TRUE(decode_buf<T>(buf, &back)) << what;
  expect_same(msgs, back, what);
  return plan.codec;
}

// One deterministic message with the given key; non-key fields seeded from
// the rng so rest round-trips are exercised with varied payloads.
bfs::VisitMsg make_msg(bfs::VisitMsg*, uint64_t key, Xoshiro256StarStar& rng) {
  return {graph::Vertex(key), graph::Vertex(rng.next() >> 1)};
}
bfs::CompactMsg make_msg(bfs::CompactMsg*, uint64_t key,
                         Xoshiro256StarStar& rng) {
  return {uint32_t(key), uint32_t(rng.next())};
}
service::MsbfsMsg make_msg(service::MsbfsMsg*, uint64_t key,
                           Xoshiro256StarStar& rng) {
  return {uint32_t(key), uint32_t(rng.next()), rng.next()};
}
analytics::DistMsg make_msg(analytics::DistMsg*, uint64_t key,
                            Xoshiro256StarStar& rng) {
  return {graph::Vertex(key), rng.next() >> 40};
}

// Keys at the given density over [0, range): unique draws without
// replacement when unique, otherwise raw draws (duplicates likely).
template <typename T>
std::vector<T> sample(uint64_t seed, uint64_t range, double density,
                      bool unique) {
  Xoshiro256StarStar rng(seed);
  std::set<uint64_t> picked;
  std::vector<T> msgs;
  const uint64_t n = uint64_t(double(range) * density);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t k = rng.next() % range;
    if (unique && !picked.insert(k).second) continue;
    msgs.push_back(make_msg(static_cast<T*>(nullptr), k, rng));
  }
  return msgs;
}

template <typename T>
void run_property_suite(uint64_t max_key, const char* name) {
  // Empty block: zero wire bytes, decodes to zero messages.
  EXPECT_EQ(roundtrip<T>({}, name), WireCodec::Raw);
  {
    BlockPlan plan = plan_block<T>(std::span<const T>{}, true);
    EXPECT_EQ(plan.bytes, 0u);
  }

  // Density 1 over a contiguous key range: unique keys, one per slot — the
  // planner must find Bitmap cheapest (1 bit/key beats any varint delta).
  {
    Xoshiro256StarStar rng(7);
    std::vector<T> dense;
    for (uint64_t k = 0; k < 512; ++k)
      dense.push_back(make_msg(static_cast<T*>(nullptr), k, rng));
    EXPECT_EQ(roundtrip<T>(dense, name), WireCodec::Bitmap) << name;
  }

  // Sparse unique keys over a huge range: bitmap is hopeless; sorted deltas
  // make Varint competitive and the round trip must still be exact.
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto sparse = sample<T>(seed, max_key + 1, 0.0, true);
    for (uint64_t i = 0; i < 64; ++i) {
      Xoshiro256StarStar rng(seed * 1000 + i);
      sparse.push_back(
          make_msg(static_cast<T*>(nullptr), rng.next() % (max_key + 1), rng));
    }
    // Drop duplicate keys the cheap way: roundtrip sorts anyway.
    roundtrip<T>(sparse, name);
  }

  // Duplicates: Bitmap must be ruled out, content preserved exactly.
  {
    Xoshiro256StarStar rng(11);
    std::vector<T> dup;
    for (int i = 0; i < 100; ++i)
      dup.push_back(make_msg(static_cast<T*>(nullptr), uint64_t(i % 7), rng));
    EXPECT_NE(roundtrip<T>(dup, name), WireCodec::Bitmap) << name;
  }

  // Max-id edge case: the largest key the type can carry round-trips under
  // every eligible codec (bitmap is priced out by exact measurement, never
  // chosen by overflow accident).
  {
    Xoshiro256StarStar rng(13);
    std::vector<T> edge;
    edge.push_back(make_msg(static_cast<T*>(nullptr), 0, rng));
    edge.push_back(make_msg(static_cast<T*>(nullptr), max_key / 2, rng));
    edge.push_back(make_msg(static_cast<T*>(nullptr), max_key, rng));
    roundtrip<T>(edge, name);
  }

  // Forced codecs: every codec must round-trip on a unique sorted block,
  // whether or not the planner would have picked it.
  {
    auto msgs = sample<T>(17, 4096, 0.05, true);
    std::sort(msgs.begin(), msgs.end(), WireFormat<T>::less);
    for (WireCodec codec :
         {WireCodec::Raw, WireCodec::Varint, WireCodec::Bitmap}) {
      std::vector<uint8_t> buf(kBlockHeaderMax +
                               msgs.size() * (sizeof(T) + 32) + 4096);
      uint8_t* end = write_block<T>(msgs, codec, buf.data());
      buf.resize(size_t(end - buf.data()));
      std::vector<T> back;
      ASSERT_TRUE(decode_buf<T>(buf, &back))
          << name << " codec " << wire_codec_name(codec);
      expect_same(msgs, back, name);

      // Truncation: every strict non-empty prefix must be rejected (a
      // zero-length buffer is the *valid* empty block, by design).
      for (size_t cut = 1; cut < buf.size(); ++cut) {
        std::vector<T> junk;
        EXPECT_FALSE(
            decode_buf<T>(std::span<const uint8_t>(buf.data(), cut), &junk))
            << name << " codec " << wire_codec_name(codec) << " cut " << cut;
      }
    }
  }
}

TEST(BlockCodecs, VisitMsgProperties) {
  run_property_suite<bfs::VisitMsg>(uint64_t(INT64_MAX), "VisitMsg");
}
TEST(BlockCodecs, CompactMsgProperties) {
  run_property_suite<bfs::CompactMsg>(UINT32_MAX, "CompactMsg");
}
TEST(BlockCodecs, MsbfsMsgProperties) {
  run_property_suite<service::MsbfsMsg>(UINT32_MAX, "MsbfsMsg");
}
TEST(BlockCodecs, DistMsgProperties) {
  run_property_suite<analytics::DistMsg>(uint64_t(INT64_MAX), "DistMsg");
}

TEST(BlockCodecs, MalformedHeadersAreRejected) {
  BlockHeader h;
  // Unknown codec byte.
  const uint8_t bad_codec[] = {3, 1, 0};
  EXPECT_FALSE(read_block_header(bad_codec, sizeof bad_codec, &h));
  const uint8_t worse_codec[] = {0xff, 1};
  EXPECT_FALSE(read_block_header(worse_codec, sizeof worse_codec, &h));
  // An explicit count of zero must travel as the zero-byte empty block.
  const uint8_t explicit_zero[] = {uint8_t(WireCodec::Raw), 0};
  EXPECT_FALSE(read_block_header(explicit_zero, sizeof explicit_zero, &h));
  // Truncated count varint.
  const uint8_t cut_count[] = {uint8_t(WireCodec::Varint), 0x80};
  EXPECT_FALSE(read_block_header(cut_count, sizeof cut_count, &h));
  // The empty block parses as zero messages.
  ASSERT_TRUE(read_block_header(cut_count, 0, &h));
  EXPECT_EQ(h.count, 0u);
}

TEST(BlockCodecs, RawBlockWithWrongBodySizeIsRejected) {
  std::vector<bfs::CompactMsg> msgs = {{1, 2}, {3, 4}};
  std::vector<uint8_t> buf(kBlockHeaderMax + msgs.size() * sizeof(msgs[0]));
  uint8_t* end = write_block<bfs::CompactMsg>(msgs, WireCodec::Raw, buf.data());
  buf.resize(size_t(end - buf.data()));
  buf.push_back(0);  // one trailing byte: no longer count * sizeof(T)
  std::vector<bfs::CompactMsg> back;
  EXPECT_FALSE(decode_buf<bfs::CompactMsg>(buf, &back));
}

TEST(BlockCodecs, BitmapPopcountMismatchIsRejected) {
  std::vector<bfs::CompactMsg> msgs = {{0, 9}, {5, 9}, {64, 9}};
  std::vector<uint8_t> buf(256);
  uint8_t* end =
      write_block<bfs::CompactMsg>(msgs, WireCodec::Bitmap, buf.data());
  buf.resize(size_t(end - buf.data()));
  // Flip an extra bit inside the bitmap words: popcount no longer matches
  // the header count, so the decoder must refuse.
  BlockHeader h;
  ASSERT_TRUE(read_block_header(buf.data(), buf.size(), &h));
  size_t bits_at = size_t(h.body - buf.data());
  uint64_t nwords = 0;
  const uint8_t* p = get_varint(h.body, buf.data() + buf.size(), &nwords);
  bits_at = size_t(p - buf.data());
  buf[bits_at + 3] |= 0x10;
  std::vector<bfs::CompactMsg> back;
  EXPECT_FALSE(decode_buf<bfs::CompactMsg>(buf, &back));
}

// --------------------------------------------------- frontier word streams

std::vector<uint64_t> random_words(uint64_t seed, size_t nwords,
                                   int bits_kept) {
  Xoshiro256StarStar rng(seed);
  std::vector<uint64_t> words(nwords);
  for (auto& w : words) {
    w = rng.next();
    for (int k = bits_kept; k < 64; ++k) w &= ~(uint64_t(1) << (rng.next() % 64));
  }
  return words;
}

void roundtrip_words(const std::vector<uint64_t>& words, const char* what) {
  BlockPlan plan = plan_words(words);
  std::vector<uint8_t> buf(plan.bytes);
  uint8_t* end = write_words(words, plan.codec, buf.data());
  ASSERT_EQ(size_t(end - buf.data()), buf.size()) << what;
  WordsHeader h;
  ASSERT_TRUE(read_words_header(buf.data(), buf.size(), &h)) << what;
  ASSERT_EQ(h.nwords, words.size()) << what;
  std::vector<uint64_t> back(words.size(), ~uint64_t(0));
  ASSERT_TRUE(decode_words(h, buf.data() + buf.size(), back.data())) << what;
  EXPECT_EQ(back, words) << what;
}

TEST(WordCodecs, DensitySweepRoundTrips) {
  roundtrip_words({}, "empty");
  roundtrip_words(std::vector<uint64_t>(32, 0), "all-zero");
  roundtrip_words(std::vector<uint64_t>(32, ~uint64_t(0)), "all-ones");
  EXPECT_EQ(plan_words(std::vector<uint64_t>(32, 0)).codec, WireCodec::Varint);
  EXPECT_EQ(plan_words(std::vector<uint64_t>(32, ~uint64_t(0))).codec,
            WireCodec::Bitmap);
  for (int bits : {1, 8, 32, 60})
    for (uint64_t seed : {21u, 22u, 23u})
      roundtrip_words(random_words(seed, 64, bits), "random");
  // Single high bit at the end of a long span: max-position delta coding.
  std::vector<uint64_t> hi(128, 0);
  hi.back() = uint64_t(1) << 63;
  EXPECT_EQ(plan_words(hi).codec, WireCodec::Varint);
  roundtrip_words(hi, "high-bit");
}

TEST(WordCodecs, ForcedCodecsAndTruncationRejection) {
  auto words = random_words(31, 16, 6);
  for (WireCodec codec : {WireCodec::Bitmap, WireCodec::Varint}) {
    std::vector<uint8_t> buf(kBlockHeaderMax + words.size() * 8 + 2048);
    uint8_t* end = write_words(words, codec, buf.data());
    buf.resize(size_t(end - buf.data()));
    WordsHeader h;
    ASSERT_TRUE(read_words_header(buf.data(), buf.size(), &h));
    std::vector<uint64_t> back(words.size());
    ASSERT_TRUE(decode_words(h, buf.data() + buf.size(), back.data()));
    EXPECT_EQ(back, words);
    for (size_t cut = 1; cut < buf.size(); ++cut) {
      WordsHeader hc;
      if (!read_words_header(buf.data(), cut, &hc)) continue;
      std::vector<uint64_t> junk(words.size());
      EXPECT_FALSE(decode_words(hc, buf.data() + cut, junk.data()))
          << wire_codec_name(codec) << " cut " << cut;
    }
  }
  WordsHeader h;
  const uint8_t raw_codec[] = {uint8_t(WireCodec::Raw), 1, 0};
  EXPECT_FALSE(read_words_header(raw_codec, sizeof raw_codec, &h));
  const uint8_t zero_words[] = {uint8_t(WireCodec::Bitmap), 0};
  EXPECT_FALSE(read_words_header(zero_words, sizeof zero_words, &h));
}

TEST(WordCodecs, OutOfRangePositionIsRejected) {
  // Hand-build a varint stream claiming one word but a set bit at 64.
  uint8_t buf[16];
  uint8_t* p = buf;
  *p++ = uint8_t(WireCodec::Varint);
  p = put_varint(p, 1);   // nwords
  p = put_varint(p, 1);   // nbits
  p = put_varint(p, 64);  // position beyond nwords * 64
  WordsHeader h;
  ASSERT_TRUE(read_words_header(buf, size_t(p - buf), &h));
  uint64_t out = 0;
  EXPECT_FALSE(decode_words(h, p, &out));
}

// ------------------------------------------- staging pools under SPMD

// The encoded exchange must hand every rank the same per-source message
// multisets as the raw exchange, and its pools must stop allocating once
// the round shape has been seen (the staging_allocs == 0 steady-state
// invariant the headline bench asserts).
TEST(StagingEncoding, EncodedExchangeMatchesRawAndStopsAllocating) {
  const sim::MeshShape mesh{2, 2};
  uint64_t mismatches = 0, steady_allocs = 0;
  run_spmd(mesh, [&](RankContext& ctx) {
    ThreadPool pool(2);
    A2aStaging<bfs::CompactMsg> enc, raw;
    enc.set_encoding(EncodingOptions{true, 8});
    raw.set_encoding(EncodingOptions{false});
    const size_t nparts = size_t(ctx.nranks());
    uint64_t bad = 0, allocs_after_warmup = 0;
    for (int round = 0; round < 4; ++round) {
      // Deterministic per-(rank, round) traffic; the warmup round is the
      // largest so later rounds fit the primed capacity.
      Xoshiro256StarStar rng(uint64_t(ctx.rank) * 1000 + uint64_t(round));
      const uint64_t n = round == 0 ? 4096 : 512 + 128 * uint64_t(round);
      enc.begin(nparts, pool.size());
      raw.begin(nparts, pool.size());
      for (uint64_t i = 0; i < n; ++i) {
        const size_t dst = size_t(rng.next() % nparts);
        bfs::CompactMsg m{uint32_t(rng.next() % 3000), uint32_t(rng.next())};
        enc.push(0, dst, m);
        raw.push(0, dst, m);
      }
      auto got_enc = enc.exchange(ctx.world, pool);
      auto got_raw = raw.exchange(ctx.world, pool);
      // Compare per-source slices as sorted sequences: the encoded path
      // ships each block key-sorted, the raw path in push order.
      if (enc.src_offsets() != raw.src_offsets()) ++bad;
      for (size_t s = 0; s + 1 < enc.src_offsets().size() && bad == 0; ++s) {
        auto lo = enc.src_offsets()[s], hi = enc.src_offsets()[s + 1];
        std::vector<bfs::CompactMsg> a(got_enc.begin() + long(lo),
                                       got_enc.begin() + long(hi));
        std::vector<bfs::CompactMsg> b(got_raw.begin() + long(lo),
                                       got_raw.begin() + long(hi));
        auto less = WireFormat<bfs::CompactMsg>::less;
        std::sort(a.begin(), a.end(), less);
        std::sort(b.begin(), b.end(), less);
        for (size_t i = 0; i < a.size(); ++i)
          if (fields(a[i]) != fields(b[i])) ++bad;
      }
      if (round == 0) allocs_after_warmup = enc.allocs();
    }
    bad = ctx.world.allreduce_sum(bad);
    uint64_t steady =
        ctx.world.allreduce_sum(enc.allocs() - allocs_after_warmup);
    if (ctx.rank == 0) {
      mismatches = bad;
      steady_allocs = steady;
    }
  });
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(steady_allocs, 0u);
}

// ------------------------------------------------- CommStats histograms

TEST(EncodingStats, HistogramAccumulatesMergesAndReports) {
  CommStats a, b;
  a.note_encoding(CollectiveType::Alltoallv, WireCodec::Varint,
                  /*blocks=*/3, /*messages=*/100, /*raw_bytes=*/800,
                  /*encoded_bytes=*/200);
  a.note_encoding(CollectiveType::Alltoallv, WireCodec::Raw, 1, 4, 32, 38);
  b.note_encoding(CollectiveType::Alltoallv, WireCodec::Varint, 1, 10, 80, 30);
  b.note_encoding(CollectiveType::Allgather, WireCodec::Bitmap, 2, 64, 512,
                  140);
  a.merge(b);

  const auto& va = a.encoding_entry(CollectiveType::Alltoallv,
                                    WireCodec::Varint);
  EXPECT_EQ(va.blocks, 4u);
  EXPECT_EQ(va.messages, 110u);
  EXPECT_EQ(va.raw_bytes, 880u);
  EXPECT_EQ(va.encoded_bytes, 230u);
  // (880-230) + (32-38) + (512-140)
  EXPECT_EQ(a.encoding_saved_bytes(), int64_t(650 - 6 + 372));

  obs::Report report;
  a.to_report(report);
  EXPECT_EQ(report.counter("comm.encoding.alltoallv.varint.blocks"), 4u);
  EXPECT_EQ(report.counter("comm.encoding.alltoallv.varint.encoded_bytes"),
            230u);
  EXPECT_EQ(report.counter("comm.encoding.allgather.bitmap.messages"), 64u);
  EXPECT_TRUE(report.has_gauge("comm.encoding.saved_bytes"));
  EXPECT_DOUBLE_EQ(report.gauge("comm.encoding.saved_bytes"), 1016.0);
  // Codec buckets that saw no blocks stay out of the report.
  EXPECT_FALSE(report.has_counter("comm.encoding.allgather.raw.blocks"));

  // A raw-only histogram can have negative savings (headers cost bytes);
  // the signed gauge must carry the sign through.
  CommStats raw_only;
  raw_only.note_encoding(CollectiveType::Alltoallv, WireCodec::Raw, 1, 4, 32,
                         38);
  EXPECT_EQ(raw_only.encoding_saved_bytes(), int64_t(-6));
  EXPECT_EQ(a.checksum_mismatches(), 0u);
}

// --------------------------------------- faults over encoded payloads

// End-to-end: with encoding on (the default), a seeded fault plan's payload
// corruptions are detected by checksums computed over the *encoded* bytes,
// recovery replays the level, and the run still validates.  Also runs under
// ctest -L faults.
TEST(EncodingFaults, CorruptedEncodedPayloadsAreDetectedAndRecovered) {
  bfs::RunnerConfig cfg;
  cfg.graph.scale = 12;
  cfg.graph.seed = 5;
  cfg.num_roots = 2;
  cfg.validate = true;
  ASSERT_TRUE(cfg.bfs.encoding.enabled);  // encoded path is the default
  sim::MeshShape mesh{2, 2};
  Topology topo(mesh);
  FaultPlan plan = FaultPlan::random(9, mesh.ranks(), /*stragglers=*/1,
                                     /*corruptions=*/3, /*failures=*/1);
  cfg.faults = &plan;
  cfg.fault_policy = FaultPolicy::Recover;

  auto result = bfs::run_graph500(topo, cfg);
  EXPECT_TRUE(result.spmd.ok());
  EXPECT_TRUE(result.all_valid);
  auto f = result.spmd.fault_totals();
  EXPECT_GT(f.injected(), 0u);
  EXPECT_GT(f.recovered, 0u);

  CommStats total = result.spmd.aggregate();
  EXPECT_GT(total.checksums_verified(), 0u);
  uint64_t encoded_blocks = 0;
  for (int c = 0; c < kWireCodecCount; ++c)
    encoded_blocks +=
        total.encoding_entry(CollectiveType::Alltoallv, WireCodec(c)).blocks +
        total.encoding_entry(CollectiveType::Allgather, WireCodec(c)).blocks;
  EXPECT_GT(encoded_blocks, 0u);  // checksums covered encoded payloads
}

}  // namespace
}  // namespace sunbfs::sim
