// Graph query service tests (ctest -L service): the batched multi-root BFS
// engine must be bit-identical to sequential single-root runs while issuing
// strictly fewer data collectives, and the broker/session layer must handle
// deadlines, admission control and replay deterministically.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "bfs/runner.hpp"
#include "bfs/workspace.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/part1d.hpp"
#include "service/broker.hpp"
#include "service/msbfs.hpp"
#include "service/session.hpp"
#include "service/workload.hpp"
#include "sim/runtime.hpp"

namespace sunbfs::service {
namespace {

using graph::Graph500Config;
using graph::Vertex;
using graph::kNoVertex;

std::vector<graph::Edge> slice_of(const Graph500Config& cfg, int rank,
                                  int nranks) {
  uint64_t m = cfg.num_edges();
  return graph::generate_rmat_range(cfg, m * uint64_t(rank) / uint64_t(nranks),
                                    m * uint64_t(rank + 1) / uint64_t(nranks));
}

Query bfs_query(uint64_t id, Vertex root, double arrival_s,
                double deadline_s = kNoDeadline) {
  Query q;
  q.id = id;
  q.root = root;
  q.arrival_s = arrival_s;
  q.deadline_s = deadline_s;
  return q;
}

// ------------------------------------------------------- MS-BFS engine

// One SPMD session: run a full-width batch and then the same roots one by
// one through the same engine, comparing parents bit-for-bit and counting
// the data collectives (alltoallv + allgather) each strategy issued.
void run_batch_vs_sequential(int threads) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 3;
  const sim::MeshShape mesh{2, 2};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};

  uint64_t mismatched_words = 0;   // parent slots differing batch vs seq
  uint64_t mismatched_levels = 0;  // per-query level count differences
  uint64_t batch_data_colls = 0, seq_data_colls = 0;
  std::vector<Vertex> roots;
  // Global parent arrays of a few batch queries for host validation.
  std::vector<std::pair<Vertex, std::vector<Vertex>>> sampled;

  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_1d(ctx, space, slice);
    auto keys = bfs::pick_search_keys(ctx, space, degrees, kMaxBatchWidth, 5);
    if (ctx.rank == 0) roots = keys;
    const uint64_t local = space.count(ctx.rank);

    bfs::BfsWorkspace ws{size_t(threads)};
    MsbfsOptions opts;
    opts.workspace = &ws;

    auto data_calls = [&] {
      return ctx.stats.entry(sim::CollectiveType::Alltoallv).calls +
             ctx.stats.entry(sim::CollectiveType::Allgather).calls;
    };

    uint64_t c0 = data_calls();
    MsbfsResult batch = msbfs_run(ctx, part, keys, opts);
    uint64_t batch_calls = data_calls() - c0;

    c0 = data_calls();
    std::vector<MsbfsResult> seq(keys.size());
    for (size_t q = 0; q < keys.size(); ++q)
      seq[q] = msbfs_run(ctx, part, std::span<const Vertex>(&keys[q], 1),
                         opts);
    uint64_t seq_calls = data_calls() - c0;

    uint64_t bad_words = 0, bad_levels = 0;
    for (size_t q = 0; q < keys.size(); ++q) {
      if (batch.levels[q] != seq[q].levels[0]) ++bad_levels;
      for (uint64_t l = 0; l < local; ++l)
        if (batch.parent[q * local + l] != seq[q].parent[l]) ++bad_words;
    }
    bad_words = ctx.world.allreduce_sum(bad_words);
    bad_levels = ctx.world.allreduce_sum(bad_levels);

    for (size_t q : {size_t(0), keys.size() / 2, keys.size() - 1}) {
      auto global = ctx.world.allgatherv(std::span<const Vertex>(
          batch.parent.data() + q * local, local));
      if (ctx.rank == 0) sampled.emplace_back(keys[q], std::move(global));
    }
    if (ctx.rank == 0) {
      mismatched_words = bad_words;
      mismatched_levels = bad_levels;
      batch_data_colls = batch_calls;
      seq_data_colls = seq_calls;
    }
  });

  EXPECT_EQ(mismatched_words, 0u)
      << "batch parents differ from sequential at " << threads << " threads";
  EXPECT_EQ(mismatched_levels, 0u);
  // The whole point of batching: one alltoallv/allgather per level for all
  // 64 queries instead of one per level per query.
  EXPECT_LT(batch_data_colls, seq_data_colls)
      << "batch " << batch_data_colls << " vs sequential " << seq_data_colls;
  EXPECT_GT(batch_data_colls, 0u);

  auto edges = graph::generate_rmat(cfg);
  for (const auto& [root, parent] : sampled) {
    auto v = graph::validate_bfs(cfg.num_vertices(), edges, root, parent);
    EXPECT_TRUE(v.ok) << "root " << root << ": " << v.error;
  }
}

TEST(Msbfs, BatchMatchesSequentialSingleThread) {
  run_batch_vs_sequential(/*threads=*/1);
}

TEST(Msbfs, BatchMatchesSequentialFourThreads) {
  run_batch_vs_sequential(/*threads=*/4);
}

// The batch result must not depend on batch composition: the same root
// produces the same parents whether it rides in bit 0 of a full batch or
// alone (already covered above), and independently of its lane.
TEST(Msbfs, LaneIndependence) {
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 7;
  const sim::MeshShape mesh{2, 2};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};

  uint64_t mismatches = ~0ull;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_1d(ctx, space, slice);
    auto keys = bfs::pick_search_keys(ctx, space, degrees, 8, 11);
    const uint64_t local = space.count(ctx.rank);

    MsbfsResult fwd = msbfs_run(ctx, part, keys);
    std::vector<Vertex> rev(keys.rbegin(), keys.rend());
    MsbfsResult bwd = msbfs_run(ctx, part, rev);

    uint64_t bad = 0;
    for (size_t q = 0; q < keys.size(); ++q) {
      size_t r = keys.size() - 1 - q;
      for (uint64_t l = 0; l < local; ++l)
        if (fwd.parent[q * local + l] != bwd.parent[r * local + l]) ++bad;
    }
    bad = ctx.world.allreduce_sum(bad);
    if (ctx.rank == 0) mismatches = bad;
  });
  EXPECT_EQ(mismatches, 0u);
}

// ------------------------------------------------------------- broker

TEST(Broker, ClosesOnWidth) {
  BrokerConfig cfg;
  cfg.batch_width = 4;
  cfg.batch_age_s = 1.0;
  QueryBroker broker(cfg);
  for (uint64_t i = 0; i < 4; ++i)
    ASSERT_TRUE(broker.submit(bfs_query(i, Vertex(i), 0.0)));
  EXPECT_TRUE(broker.batch_ready(0.0));
  std::vector<QueryResult> expired;
  auto batch = broker.form_batch(0.0, &expired);
  ASSERT_EQ(batch.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].id, i);  // FIFO
  EXPECT_TRUE(expired.empty());
  EXPECT_TRUE(broker.empty());
}

TEST(Broker, ClosesOnAgeTimeout) {
  BrokerConfig cfg;
  cfg.batch_width = 64;
  cfg.batch_age_s = 0.005;
  QueryBroker broker(cfg);
  ASSERT_TRUE(broker.submit(bfs_query(0, 1, /*arrival=*/0.010)));
  EXPECT_FALSE(broker.batch_ready(0.012));
  EXPECT_DOUBLE_EQ(broker.next_close_s(), 0.015);
  EXPECT_TRUE(broker.batch_ready(0.015));
  std::vector<QueryResult> expired;
  auto batch = broker.form_batch(0.015, &expired);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_TRUE(expired.empty());
}

TEST(Broker, RejectsOverCapacityWithTypedError) {
  BrokerConfig cfg;
  cfg.queue_capacity = 2;
  QueryBroker broker(cfg);
  ASSERT_TRUE(broker.submit(bfs_query(0, 1, 0.0)));
  ASSERT_TRUE(broker.submit(bfs_query(1, 2, 0.0)));
  QueryResult rejection;
  EXPECT_FALSE(broker.submit(bfs_query(2, 3, 0.0), &rejection));
  EXPECT_EQ(rejection.status, QueryStatus::Rejected);
  EXPECT_EQ(rejection.id, 2u);
  EXPECT_NE(rejection.error.find("QueryRejected"), std::string::npos)
      << rejection.error;
  EXPECT_NE(rejection.error.find("capacity 2"), std::string::npos)
      << rejection.error;
  EXPECT_EQ(broker.depth(), 2u);  // the queue itself is untouched
}

TEST(Broker, SweepsExpiredWithTypedError) {
  BrokerConfig cfg;
  cfg.batch_width = 64;
  cfg.batch_age_s = 0.005;
  QueryBroker broker(cfg);
  ASSERT_TRUE(broker.submit(bfs_query(0, 1, 0.0, /*deadline=*/0.001)));
  ASSERT_TRUE(broker.submit(bfs_query(1, 2, 0.0)));
  EXPECT_TRUE(broker.batch_ready(0.002));  // an expiry needs sweeping
  std::vector<QueryResult> expired;
  auto batch = broker.form_batch(0.002, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 0u);
  EXPECT_EQ(expired[0].status, QueryStatus::Expired);
  EXPECT_NE(expired[0].error.find("QueryExpired"), std::string::npos)
      << expired[0].error;
  ASSERT_EQ(batch.size(), 1u);  // the neighbour survives the sweep
  EXPECT_EQ(batch[0].id, 1u);
}

TEST(Broker, BatchesAreKindHomogeneous) {
  BrokerConfig cfg;
  cfg.batch_width = 64;
  QueryBroker broker(cfg);
  Query sssp = bfs_query(1, 2, 0.0);
  sssp.kind = QueryKind::SsspRoot;
  ASSERT_TRUE(broker.submit(bfs_query(0, 1, 0.0)));
  ASSERT_TRUE(broker.submit(sssp));
  ASSERT_TRUE(broker.submit(bfs_query(2, 3, 0.0)));
  std::vector<QueryResult> expired;
  auto batch = broker.form_batch(10.0, &expired);
  ASSERT_EQ(batch.size(), 2u);  // both BFS queries, not the SSSP one
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[1].id, 2u);
  ASSERT_EQ(broker.depth(), 1u);
  auto next = broker.form_batch(10.0, &expired);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].kind, QueryKind::SsspRoot);
}

// ------------------------------------------------------ overload breaker

BrokerConfig breaker_config() {
  BrokerConfig cfg;
  cfg.batch_width = 64;
  cfg.queue_capacity = 10;
  cfg.shed.enabled = true;
  cfg.shed.queue_highwater = 0.5;  // occupancy trip at depth 5
  cfg.shed.window = 4;
  cfg.shed.min_samples = 2;
  cfg.shed.probe_after_s = 0.01;
  cfg.shed.probe_admit_every = 4;
  return cfg;
}

Query sheddable(uint64_t id, double arrival_s) {
  Query q = bfs_query(id, Vertex(id + 1), arrival_s);
  q.priority = 0;
  return q;
}

QueryResult outcome(QueryStatus status, double deadline_s) {
  QueryResult r;
  r.status = status;
  r.deadline_s = deadline_s;
  return r;
}

TEST(Breaker, OccupancyTripShedsOnlyLowPriority) {
  QueryBroker broker(breaker_config());
  for (uint64_t i = 0; i < 5; ++i)
    ASSERT_TRUE(broker.submit(bfs_query(i, Vertex(i + 1), 0.0), nullptr, 0.0));
  EXPECT_EQ(broker.breaker(), BreakerState::Shedding);  // depth 5 = highwater
  EXPECT_EQ(broker.breaker_transitions(), 1u);

  QueryResult rejection;
  EXPECT_FALSE(broker.submit(sheddable(5, 0.0), &rejection, 0.0));
  EXPECT_EQ(rejection.status, QueryStatus::Rejected);
  EXPECT_NE(rejection.error.find("QueryShed"), std::string::npos)
      << rejection.error;
  EXPECT_EQ(broker.shed_count(), 1u);
  EXPECT_EQ(broker.depth(), 5u);

  // Default-priority queries ride through an open breaker untouched.
  EXPECT_TRUE(broker.submit(bfs_query(6, 7, 0.0), nullptr, 0.0));
  EXPECT_EQ(broker.depth(), 6u);
}

TEST(Breaker, MissRateOpensBreaker) {
  QueryBroker broker(breaker_config());
  EXPECT_EQ(broker.breaker(), BreakerState::Closed);
  // One miss is below min_samples; the second opens (rate 1 >= 0.5).
  broker.on_outcome(outcome(QueryStatus::Expired, 0.001), 0.002);
  EXPECT_EQ(broker.breaker(), BreakerState::Closed);
  broker.on_outcome(outcome(QueryStatus::Expired, 0.001), 0.003);
  EXPECT_EQ(broker.breaker(), BreakerState::Shedding);
  // Rejections and deadline-free completions are not overload signals.
  broker.on_outcome(outcome(QueryStatus::Rejected, kNoDeadline), 0.004);
  EXPECT_EQ(broker.breaker_transitions(), 1u);
}

TEST(Breaker, ProbingAdmitsTrickleThenHealthyWindowCloses) {
  QueryBroker broker(breaker_config());
  for (uint64_t i = 0; i < 5; ++i)
    ASSERT_TRUE(broker.submit(bfs_query(i, Vertex(i + 1), 0.0), nullptr, 0.0));
  ASSERT_EQ(broker.breaker(), BreakerState::Shedding);

  // Past the probe timer, the first sheddable submission flips the breaker
  // to Probing and is itself the probe (1 admitted in every 4).
  EXPECT_TRUE(broker.submit(sheddable(10, 0.02), nullptr, 0.02));
  EXPECT_EQ(broker.breaker(), BreakerState::Probing);
  EXPECT_TRUE(broker.submit(bfs_query(11, 12, 0.02), nullptr, 0.02));
  for (uint64_t i = 0; i < 3; ++i)
    EXPECT_FALSE(broker.submit(sheddable(12 + i, 0.02), nullptr, 0.02));
  EXPECT_TRUE(broker.submit(sheddable(15, 0.02), nullptr, 0.02));
  EXPECT_EQ(broker.shed_count(), 3u);

  // A healthy outcome window closes the breaker again.
  broker.on_outcome(outcome(QueryStatus::Done, 0.5), 0.03);
  broker.on_outcome(outcome(QueryStatus::Done, 0.5), 0.03);
  EXPECT_EQ(broker.breaker(), BreakerState::Closed);
  EXPECT_EQ(broker.breaker_transitions(), 3u);  // shed -> probe -> closed
}

TEST(Breaker, ProbeMissReopensImmediately) {
  QueryBroker broker(breaker_config());
  for (uint64_t i = 0; i < 5; ++i)
    ASSERT_TRUE(broker.submit(bfs_query(i, Vertex(i + 1), 0.0), nullptr, 0.0));
  EXPECT_TRUE(broker.submit(sheddable(10, 0.02), nullptr, 0.02));
  ASSERT_EQ(broker.breaker(), BreakerState::Probing);
  broker.on_outcome(outcome(QueryStatus::Expired, 0.001), 0.03);
  EXPECT_EQ(broker.breaker(), BreakerState::Shedding);
}

TEST(Breaker, FailedResultCarriesAttemptsAndTimestamps) {
  Query q = bfs_query(9, 4, /*arrival=*/0.001, /*deadline=*/0.010);
  q.attempt = 2;
  QueryResult r = make_failed(q, 0.006, "batch exhausted recovery");
  EXPECT_EQ(r.status, QueryStatus::Failed);
  EXPECT_EQ(r.id, 9u);
  EXPECT_EQ(r.retries, 2);
  EXPECT_EQ(r.deadline_s, 0.010);
  EXPECT_DOUBLE_EQ(r.latency_s, 0.005);
  EXPECT_NE(r.error.find("QueryFailed"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("3 attempt(s)"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("batch exhausted recovery"), std::string::npos);
}

// ------------------------------------------------------------ session

ServiceConfig small_service(int scale = 9) {
  ServiceConfig cfg;
  cfg.graph.scale = scale;
  cfg.graph.seed = 3;
  cfg.threads_per_rank = 2;
  cfg.root_pool = 16;
  return cfg;
}

TEST(Session, DeadlineExpiryDoesNotCorruptNeighbours) {
  GraphSession session(sim::Topology(sim::MeshShape{2, 2}), small_service());
  WorkloadConfig wl;
  wl.seed = 5;
  wl.num_queries = 16;
  wl.rate_qps = 2000;
  wl.expire_every = 4;  // every 4th query arrives already expired
  ServiceReport report = session.serve(wl, BrokerConfig{});
  ASSERT_TRUE(report.spmd.ok());

  uint64_t expired = 0, done = 0;
  for (const auto& r : report.results) {
    if (r.status == QueryStatus::Expired) {
      ++expired;
      EXPECT_EQ((r.id + 1) % 4, 0u) << "unexpected expiry of query " << r.id;
      EXPECT_NE(r.error.find("QueryExpired"), std::string::npos) << r.error;
      EXPECT_EQ(r.traversed_edges, 0u);
    } else {
      ++done;
      EXPECT_EQ(r.status, QueryStatus::Done);
      EXPECT_GT(r.traversed_edges, 0u) << "query " << r.id;
      EXPECT_GT(r.levels, 0);
      EXPECT_GE(r.latency_s, 0.0);
    }
  }
  EXPECT_EQ(expired, 4u);
  EXPECT_EQ(done, 12u);
  EXPECT_EQ(report.expired_total(), 4u);
  EXPECT_EQ(report.completed, 12u);
  EXPECT_EQ(report.rejected, 0u);
}

TEST(Session, AdmissionRejectsOverCapacity) {
  GraphSession session(sim::Topology(sim::MeshShape{2, 2}), small_service());
  WorkloadConfig wl;
  wl.seed = 9;
  wl.num_queries = 32;
  wl.rate_qps = 1e9;  // everything arrives at once
  BrokerConfig broker;
  broker.queue_capacity = 4;
  broker.batch_width = 4;
  ServiceReport report = session.serve(wl, broker);
  ASSERT_TRUE(report.spmd.ok());

  EXPECT_GT(report.rejected, 0u);
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.rejected + report.completed + report.expired_total(),
            report.submitted);
  for (const auto& r : report.results) {
    if (r.status != QueryStatus::Rejected) continue;
    EXPECT_NE(r.error.find("QueryRejected"), std::string::npos) << r.error;
    EXPECT_EQ(r.traversed_edges, 0u);
  }
}

void expect_identical_reports(const ServiceReport& a, const ServiceReport& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    const auto& x = a.results[i];
    const auto& y = b.results[i];
    EXPECT_EQ(x.id, y.id) << "result " << i;
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.status, y.status);
    EXPECT_EQ(x.root, y.root);
    EXPECT_EQ(x.arrival_s, y.arrival_s);
    EXPECT_EQ(x.start_s, y.start_s);
    EXPECT_EQ(x.done_s, y.done_s);
    EXPECT_EQ(x.latency_s, y.latency_s);
    EXPECT_EQ(x.traversed_edges, y.traversed_edges);
    EXPECT_EQ(x.levels, y.levels);
  }
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.qps, b.qps);
  EXPECT_EQ(a.latency_mean_s, b.latency_mean_s);
  EXPECT_EQ(a.latency_p50_s, b.latency_p50_s);
  EXPECT_EQ(a.latency_p95_s, b.latency_p95_s);
  EXPECT_EQ(a.latency_p99_s, b.latency_p99_s);
}

TEST(Session, DeterministicReplayOpenLoop) {
  GraphSession session(sim::Topology(sim::MeshShape{2, 2}), small_service());
  WorkloadConfig wl;
  wl.seed = 21;
  wl.num_queries = 24;
  wl.rate_qps = 5000;
  ServiceReport first = session.serve(wl, BrokerConfig{});
  ServiceReport second = session.serve(wl, BrokerConfig{});
  ASSERT_TRUE(first.spmd.ok());
  ASSERT_TRUE(second.spmd.ok());
  EXPECT_GT(first.completed, 0u);
  expect_identical_reports(first, second);
}

TEST(Session, DeterministicReplayClosedLoopMixed) {
  GraphSession session(sim::Topology(sim::MeshShape{2, 2}), small_service());
  WorkloadConfig wl;
  wl.mode = ArrivalMode::Closed;
  wl.seed = 33;
  wl.num_queries = 20;
  wl.users = 4;
  wl.think_s = 1e-4;
  wl.sssp_fraction = 0.3;
  ServiceReport first = session.serve(wl, BrokerConfig{});
  ServiceReport second = session.serve(wl, BrokerConfig{});
  ASSERT_TRUE(first.spmd.ok());
  ASSERT_TRUE(second.spmd.ok());
  EXPECT_GT(first.completed, 0u);
  uint64_t sssp = 0;
  for (const auto& r : first.results)
    if (r.kind == QueryKind::SsspRoot) ++sssp;
  EXPECT_GT(sssp, 0u);  // the mix actually exercised the SSSP path
  expect_identical_reports(first, second);
}

// ---------------------------------------------------- zipfian workload

// The zipfian sampler is part of the replay contract: one uniform draw per
// sample inverted through a precomputed CDF.  Pin the exact (kind, root,
// target) stream for a fixed seed so any accidental change to the draw
// order or the CDF construction shows up as a literal diff.
TEST(Workload, ZipfianPinnedSequenceForFixedSeed) {
  WorkloadConfig wl;
  wl.seed = 77;
  wl.num_queries = 12;
  wl.rate_qps = 1e6;
  wl.root_dist = RootDist::Zipfian;
  wl.zipf_theta = 0.99;
  wl.distance_fraction = 0.25;
  std::vector<Vertex> pool(8);
  for (size_t i = 0; i < pool.size(); ++i) pool[i] = Vertex(100 + 10 * i);
  WorkloadGen gen(wl, pool);
  auto queries = gen.pop_ready(1e9);
  ASSERT_EQ(queries.size(), 12u);
  std::vector<Vertex> roots, targets;
  std::vector<QueryKind> kinds;
  for (const Query& q : queries) {
    kinds.push_back(q.kind);
    roots.push_back(q.root);
    targets.push_back(q.target);
  }
  const std::vector<QueryKind> want_kinds = {
      QueryKind::Distance, QueryKind::Distance, QueryKind::Bfs,
      QueryKind::Bfs,      QueryKind::Bfs,      QueryKind::Bfs,
      QueryKind::Distance, QueryKind::Distance, QueryKind::Bfs,
      QueryKind::Distance, QueryKind::Bfs,      QueryKind::Bfs};
  const std::vector<Vertex> want_roots = {120, 100, 170, 100, 100, 100,
                                          120, 160, 170, 160, 120, 120};
  const std::vector<Vertex> want_targets = {
      170, 120, kNoVertex, kNoVertex, kNoVertex, kNoVertex,
      130, 120, kNoVertex, 100,       kNoVertex, kNoVertex};
  EXPECT_EQ(kinds, want_kinds);
  EXPECT_EQ(roots, want_roots);
  EXPECT_EQ(targets, want_targets);
}

// Zipf skew sanity: with theta ~= 1 the hottest pool index must dominate a
// uniform share, and two generators from the same seed must agree draw for
// draw (the replay property the pinned test above freezes one instance of).
TEST(Workload, ZipfianSkewAndReplay) {
  WorkloadConfig wl;
  wl.seed = 99;
  wl.num_queries = 400;
  wl.rate_qps = 1e6;
  wl.root_dist = RootDist::Zipfian;
  wl.zipf_theta = 0.99;
  std::vector<Vertex> pool(16);
  for (size_t i = 0; i < pool.size(); ++i) pool[i] = Vertex(i);
  WorkloadGen a(wl, pool);
  WorkloadGen b(wl, pool);
  auto qa = a.pop_ready(1e9);
  auto qb = b.pop_ready(1e9);
  ASSERT_EQ(qa.size(), 400u);
  ASSERT_EQ(qa.size(), qb.size());
  uint64_t hottest = 0;
  for (size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa[i].root, qb[i].root) << "draw " << i;
    EXPECT_EQ(qa[i].arrival_s, qb[i].arrival_s) << "draw " << i;
    if (qa[i].root == pool[0]) ++hottest;
  }
  // Uniform share would be 1/16 = 25 of 400; zipf(0.99) over 16 gives the
  // top rank ~30%.  Gate well below that to stay robust across seeds.
  EXPECT_GT(hottest, 60u);
}

TEST(Percentile, NearestRank) {
  std::vector<double> s{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(percentile(s, 50), 2);
  EXPECT_DOUBLE_EQ(percentile(s, 100), 4);
  EXPECT_DOUBLE_EQ(percentile(s, 0), 1);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0);
}

}  // namespace
}  // namespace sunbfs::service
