// Stress, determinism and odd-shape tests: large meshes, unusual chip
// geometries, repeated runs, and smoke tests of the reporting helpers.
#include <gtest/gtest.h>

#include <numeric>

#include "bfs/bfs15d.hpp"
#include "bfs/runner.hpp"
#include "chip/chip.hpp"
#include "graph/rmat.hpp"
#include "partition/part15d.hpp"
#include "sim/runtime.hpp"
#include "sort/ocs_rma.hpp"
#include "sort/psrs.hpp"
#include "support/log.hpp"
#include "support/random.hpp"

namespace sunbfs {
namespace {

using graph::Graph500Config;
using graph::Vertex;

TEST(RuntimeStress, SixtyFourRanksStayCoherent) {
  sim::MeshShape mesh{8, 8};
  auto report = sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    // Mixed collective workload with value checks.
    for (int i = 0; i < 5; ++i) {
      int sum = ctx.world.allreduce_sum(1);
      ASSERT_EQ(sum, 64);
      auto row = ctx.row.allgather(ctx.rank);
      ASSERT_EQ(row.size(), 8u);
      for (size_t c = 0; c < row.size(); ++c)
        ASSERT_EQ(row[c], ctx.mesh.rank_of(ctx.row_index(), int(c)));
      std::vector<std::vector<uint16_t>> to(64);
      to[size_t((ctx.rank + i) % 64)].push_back(uint16_t(ctx.rank));
      auto got = ctx.world.alltoallv(to);
      ASSERT_EQ(got.size(), 1u);
      ASSERT_EQ(int(got[0]), (ctx.rank - i + 128) % 64);
    }
  });
  EXPECT_EQ(report.per_rank.size(), 64u);
  EXPECT_GT(report.aggregate().total_bytes_sent(), 0u);
}

TEST(RuntimeStress, BfsOnWideMesh) {
  Graph500Config cfg;
  cfg.scale = 12;
  cfg.seed = 77;
  sim::MeshShape mesh{5, 5};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  Vertex root = graph::generate_rmat_range(cfg, 0, 1)[0].u;
  std::vector<Vertex> parent;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    uint64_t m = cfg.num_edges();
    auto slice = graph::generate_rmat_range(
        cfg, m * uint64_t(ctx.rank) / uint64_t(ctx.nranks()),
        m * uint64_t(ctx.rank + 1) / uint64_t(ctx.nranks()));
    auto deg = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_15d(ctx, space, slice, deg, {512, 64});
    auto res = bfs::bfs15d_run(ctx, part, root);
    auto gathered = ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    if (ctx.rank == 0) parent = std::move(gathered);
  });
  auto edges = graph::generate_rmat(cfg);
  auto v = graph::validate_bfs(cfg.num_vertices(), edges, root, parent);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(Determinism, PartitionBuildsIdenticallyTwice) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 5;
  sim::MeshShape mesh{2, 2};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  auto build_once = [&](int rank_to_keep) {
    std::pair<std::vector<uint64_t>, std::vector<Vertex>> snapshot;
    sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
      uint64_t m = cfg.num_edges();
      auto slice = graph::generate_rmat_range(
          cfg, m * uint64_t(ctx.rank) / uint64_t(ctx.nranks()),
          m * uint64_t(ctx.rank + 1) / uint64_t(ctx.nranks()));
      auto deg = partition::compute_local_degrees(ctx, space, slice);
      auto part = partition::build_15d(ctx, space, slice, deg, {128, 32});
      if (ctx.rank == rank_to_keep)
        snapshot = {part.eh2eh.offsets(), part.eh2eh.values()};
    });
    return snapshot;
  };
  auto a = build_once(1);
  auto b = build_once(1);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, BfsParentsIdenticalAcrossRuns) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 6;
  sim::MeshShape mesh{2, 3};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  Vertex root = graph::generate_rmat_range(cfg, 2, 3)[0].u;
  auto run_once = [&] {
    std::vector<Vertex> parent;
    sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
      uint64_t m = cfg.num_edges();
      auto slice = graph::generate_rmat_range(
          cfg, m * uint64_t(ctx.rank) / uint64_t(ctx.nranks()),
          m * uint64_t(ctx.rank + 1) / uint64_t(ctx.nranks()));
      auto deg = partition::compute_local_degrees(ctx, space, slice);
      auto part = partition::build_15d(ctx, space, slice, deg, {128, 32});
      auto res = bfs::bfs15d_run(ctx, part, root);
      auto gathered =
          ctx.world.allgatherv(std::span<const Vertex>(res.parent));
      if (ctx.rank == 0) parent = std::move(gathered);
    });
    return parent;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ChipStress, WideCgGeometryRunsOcs) {
  chip::Chip chip(chip::Geometry{3, 32, 32 * 1024});
  Xoshiro256StarStar rng(9);
  std::vector<uint64_t> in(30000);
  for (auto& x : in) x = rng.next();
  std::vector<uint64_t> out(in.size());
  sort::OcsParams params;
  params.buffer_bytes = 256;
  auto res = sort::ocs_rma_bucket_sort<uint64_t>(
      chip, in, std::span(out), 64, [](uint64_t v) { return uint32_t(v & 63); },
      -1, params);
  EXPECT_EQ(res.offsets.back(), in.size());
  std::multiset<uint64_t> a(in.begin(), in.end()), b(out.begin(), out.end());
  EXPECT_EQ(a, b);
}

TEST(ChipStress, MinimalTwoCpeGeometry) {
  // One producer, one consumer: the degenerate OCS pipe still works.
  chip::Chip chip(chip::Geometry{1, 2, 8 * 1024});
  std::vector<uint64_t> in(1000);
  std::iota(in.begin(), in.end(), 0);
  std::vector<uint64_t> out(in.size());
  sort::OcsParams params;
  params.buffer_bytes = 128;
  auto res = sort::ocs_rma_bucket_sort<uint64_t>(
      chip, in, std::span(out), 4, [](uint64_t v) { return uint32_t(v % 4); },
      1, params);
  for (uint32_t b = 0; b < 4; ++b)
    for (uint64_t i = res.offsets[b]; i < res.offsets[b + 1]; ++i)
      ASSERT_EQ(out[i] % 4, b);
}

TEST(ChipStress, RepeatedKernelsReuseLdmCleanly) {
  chip::Chip chip(chip::Geometry::tiny());
  for (int round = 0; round < 10; ++round) {
    auto report = chip.run(
        [&](chip::CpeContext& cpe) {
          cpe.ldm().reset_alloc();
          size_t off = cpe.ldm().alloc(1024);
          cpe.ldm().as<uint64_t>(off)[0] = uint64_t(round);
          cpe.sync_cg();
        },
        1);
    EXPECT_GT(report.max_cycles, 0.0);
  }
}

TEST(PsrsStress, StructPayloadsAcrossMesh) {
  struct Rec {
    uint64_t key;
    uint32_t payload;
    uint32_t pad;
  };
  const int p = 6;
  std::vector<std::vector<Rec>> inputs(p);
  Xoshiro256StarStar rng(31);
  for (auto& in : inputs) {
    in.resize(2000);
    for (auto& r : in) {
      r.key = rng.next_below(1 << 20);
      r.payload = uint32_t(r.key * 7);
    }
  }
  std::vector<std::vector<Rec>> outputs(p);
  sim::run_spmd(sim::MeshShape{2, 3}, [&](sim::RankContext& ctx) {
    outputs[size_t(ctx.rank)] = sort::psrs_sort(
        ctx.world, inputs[size_t(ctx.rank)],
        [](const Rec& r) { return r.key; });
  });
  uint64_t prev = 0;
  size_t total = 0;
  for (const auto& out : outputs)
    for (const auto& r : out) {
      ASSERT_GE(r.key, prev);
      ASSERT_EQ(r.payload, uint32_t(r.key * 7));  // payload intact
      prev = r.key;
      ++total;
    }
  EXPECT_EQ(total, size_t(p) * 2000);
}

TEST(Reporting, ToStringSmoke) {
  sim::Topology topo(sim::MeshShape{2, 2});
  EXPECT_NE(topo.to_string().find("supernodes"), std::string::npos);
  sim::CommStats stats;
  stats.record(sim::CollectiveType::Alltoallv, 100, 50, 0.1, 0.2, 0.02);
  EXPECT_NE(stats.to_string().find("alltoallv"), std::string::npos);
  Log2Histogram h;
  h.add(5);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Reporting, LogLevelsFilter) {
  LogLevel old = log_level();
  set_log_level(LogLevel::Error);
  log_info("should be dropped");
  log_error("shown");
  set_log_level(old);
  SUCCEED();
}

TEST(Determinism, RootSelectionIgnoresMeshShape) {
  // The same (seed, scale) must pick the same keys on any mesh.
  bfs::RunnerConfig a;
  a.graph.scale = 9;
  a.num_roots = 3;
  a.root_seed = 5;
  a.validate = false;
  auto r1 = bfs::run_graph500(sim::Topology(sim::MeshShape{1, 2}), a);
  auto r2 = bfs::run_graph500(sim::Topology(sim::MeshShape{3, 2}), a);
  for (size_t i = 0; i < 3; ++i)
    EXPECT_EQ(r1.runs[i].root, r2.runs[i].root);
}

}  // namespace
}  // namespace sunbfs
