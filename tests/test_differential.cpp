// Differential-oracle tests (ctest -L differential): every distributed
// traversal engine is checked against a serial host reference on seeded
// configurations spanning mesh shapes, scales, thread counts and the wire
// encoding.  Three layers:
//
//   1. BFS engines vs graph::reference_bfs — reachability and per-vertex
//      depths must agree exactly (the BFS tree itself may differ; depths
//      are unique), and the tree must pass the kernel-2 validator.
//   2. MS-BFS vs a serial re-derivation of its canonical max-global-id
//      parent rule — exact parent-array equality, not just equivalence.
//   3. A seeded randomized sweep over full-pipeline configurations
//      (including fault plans); any failure prints a single
//      graph500_runner command line that reproduces it.  Depth is
//      controlled by SUNBFS_SWEEP_ITERS (default shallow for tier-1 CI),
//      the seed by SUNBFS_SWEEP_SEED.
//
// The encoding on/off bit-identity case here is the PR's acceptance
// criterion: parent claims are store_max reductions, so the winning parent
// per (vertex, level) is order-independent and the encoded exchange must
// not change a single output word at any thread count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bfs/bfs15d.hpp"
#include "bfs/bfs1d.hpp"
#include "bfs/runner.hpp"
#include "chip/arch.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/part15d.hpp"
#include "partition/part1d.hpp"
#include "service/msbfs.hpp"
#include "service/query.hpp"
#include "sim/fault.hpp"
#include "sim/runtime.hpp"
#include "support/random.hpp"

namespace sunbfs {
namespace {

using graph::Edge;
using graph::Graph500Config;
using graph::Vertex;
using graph::kNoVertex;

std::vector<Edge> slice_of(const Graph500Config& cfg, int rank, int nranks) {
  uint64_t m = cfg.num_edges();
  return graph::generate_rmat_range(cfg, m * uint64_t(rank) / uint64_t(nranks),
                                    m * uint64_t(rank + 1) / uint64_t(nranks));
}

Vertex pick_root(const Graph500Config& cfg) {
  return graph::generate_rmat_range(cfg, 0, 1)[0].u;
}

std::vector<Vertex> run_15d(const Graph500Config& cfg, sim::MeshShape mesh,
                            Vertex root, int threads, bool encoding) {
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<Vertex> global_parent;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto deg = partition::compute_local_degrees(ctx, space, slice);
    auto part =
        partition::build_15d(ctx, space, slice, deg, {128, 32});
    bfs::Bfs15dOptions opts;
    opts.threads_per_rank = threads;
    opts.encoding.enabled = encoding;
    auto res = bfs::bfs15d_run(ctx, part, root, opts);
    auto gathered = ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    if (ctx.rank == 0) global_parent = std::move(gathered);
  });
  return global_parent;
}

std::vector<Vertex> run_1d(const Graph500Config& cfg, sim::MeshShape mesh,
                           Vertex root, int threads, bool encoding) {
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<Vertex> global_parent;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto part = partition::build_1d(ctx, space, slice);
    bfs::Bfs1dOptions opts;
    opts.threads_per_rank = threads;
    opts.encoding.enabled = encoding;
    auto res = bfs::bfs1d_run(ctx, part, root, opts);
    auto gathered = ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    if (ctx.rank == 0) global_parent = std::move(gathered);
  });
  return global_parent;
}

// The differential oracle proper: a valid BFS tree whose per-vertex depths
// equal the serial reference's (depths are unique per (graph, root), so
// this pins the full depth function, not just reachability).
void expect_matches_reference(const Graph500Config& cfg, Vertex root,
                              std::span<const Vertex> parent) {
  ASSERT_EQ(parent.size(), cfg.num_vertices());
  auto edges = graph::generate_rmat(cfg);
  auto res = graph::validate_bfs(cfg.num_vertices(), edges, root, parent);
  ASSERT_TRUE(res.ok) << res.error;
  auto ref = graph::reference_bfs(cfg.num_vertices(), edges, root);
  auto ref_levels = graph::levels_from_parents(cfg.num_vertices(), ref, root);
  auto got_levels =
      graph::levels_from_parents(cfg.num_vertices(), parent, root);
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v)
    ASSERT_EQ(got_levels[v], ref_levels[v]) << "depth mismatch at " << v;
}

// --------------------------------------------- engine-vs-oracle sweep

struct DiffCase {
  const char* engine;  // "1d" or "1.5d"
  uint64_t seed;
  int scale;
  int rows, cols;
  int threads;
  bool encoding;
};

class EngineOracle : public ::testing::TestWithParam<DiffCase> {};

TEST_P(EngineOracle, DepthsMatchSerialReference) {
  const DiffCase c = GetParam();
  Graph500Config cfg;
  cfg.scale = c.scale;
  cfg.seed = c.seed;
  Vertex root = pick_root(cfg);
  sim::MeshShape mesh{c.rows, c.cols};
  auto parent = std::string(c.engine) == "1d"
                    ? run_1d(cfg, mesh, root, c.threads, c.encoding)
                    : run_15d(cfg, mesh, root, c.threads, c.encoding);
  expect_matches_reference(cfg, root, parent);
}

INSTANTIATE_TEST_SUITE_P(
    SeededConfigs, EngineOracle,
    ::testing::Values(
        // 1D engine: shapes x threads x encoding.
        DiffCase{"1d", 1, 9, 1, 2, 1, true},
        DiffCase{"1d", 2, 10, 2, 2, 1, true},
        DiffCase{"1d", 3, 10, 2, 2, 4, true},
        DiffCase{"1d", 4, 10, 2, 2, 2, false},
        DiffCase{"1d", 5, 11, 2, 4, 2, true},
        DiffCase{"1d", 6, 10, 4, 1, 1, false},
        // 1.5D engine, same axes plus non-square meshes.
        DiffCase{"1.5d", 7, 9, 1, 1, 1, true},
        DiffCase{"1.5d", 8, 10, 2, 2, 1, true},
        DiffCase{"1.5d", 9, 10, 2, 2, 4, true},
        DiffCase{"1.5d", 10, 10, 2, 3, 2, false},
        DiffCase{"1.5d", 11, 11, 4, 4, 2, true},
        DiffCase{"1.5d", 12, 10, 2, 2, 4, false},
        DiffCase{"1.5d", 13, 11, 3, 2, 2, true},
        DiffCase{"1.5d", 14, 10, 1, 4, 1, true}));

// ------------------------------------------ MS-BFS exact-parent oracle

struct MsbfsCase {
  uint64_t seed;
  int scale;
  int rows, cols;
  int width;
  int threads;
  bool encoding;
  bool dup_roots;
};

class MsbfsOracle : public ::testing::TestWithParam<MsbfsCase> {};

// Serial re-derivation of the engine's determinism contract: the parent of
// v is the *maximum global id* neighbour at depth(v) - 1.
std::vector<Vertex> canonical_parents(uint64_t nv,
                                      const std::vector<std::vector<Vertex>>& adj,
                                      std::span<const int64_t> levels,
                                      Vertex root) {
  std::vector<Vertex> parent(nv, kNoVertex);
  parent[size_t(root)] = root;
  for (uint64_t v = 0; v < nv; ++v) {
    if (levels[v] <= 0) continue;  // unreachable or the root itself
    Vertex best = kNoVertex;
    for (Vertex u : adj[v])
      if (levels[size_t(u)] == levels[v] - 1 && u > best) best = u;
    parent[v] = best;
  }
  return parent;
}

TEST_P(MsbfsOracle, BatchParentsEqualCanonicalReference) {
  const MsbfsCase c = GetParam();
  Graph500Config cfg;
  cfg.scale = c.scale;
  cfg.seed = c.seed;
  sim::MeshShape mesh{c.rows, c.cols};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};

  std::vector<Vertex> roots;
  std::vector<std::vector<Vertex>> got_parent;  // per query, global order
  std::vector<int> got_levels;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_1d(ctx, space, slice);
    auto keys = bfs::pick_search_keys(ctx, space, degrees, c.width, c.seed);
    if (c.dup_roots && keys.size() >= 2) keys[1] = keys[0];
    service::MsbfsOptions opts;
    opts.threads_per_rank = c.threads;
    opts.encoding.enabled = c.encoding;
    auto batch = service::msbfs_run(ctx, part, keys, opts);
    const uint64_t local = space.count(ctx.rank);
    std::vector<std::vector<Vertex>> gathered(keys.size());
    for (size_t q = 0; q < keys.size(); ++q)
      gathered[q] = ctx.world.allgatherv(std::span<const Vertex>(
          batch.parent.data() + q * local, local));
    if (ctx.rank == 0) {
      roots = keys;
      got_parent = std::move(gathered);
      got_levels = batch.levels;
    }
  });

  ASSERT_EQ(roots.size(), size_t(c.width));
  auto edges = graph::generate_rmat(cfg);
  std::vector<std::vector<Vertex>> adj(cfg.num_vertices());
  for (const auto& e : edges) {
    if (e.u == e.v) continue;
    adj[size_t(e.u)].push_back(e.v);
    adj[size_t(e.v)].push_back(e.u);
  }
  for (size_t q = 0; q < roots.size(); ++q) {
    auto ref = graph::reference_bfs(cfg.num_vertices(), edges, roots[q]);
    auto levels =
        graph::levels_from_parents(cfg.num_vertices(), ref, roots[q]);
    auto want = canonical_parents(cfg.num_vertices(), adj, levels, roots[q]);
    int64_t ecc = 0;
    for (uint64_t v = 0; v < cfg.num_vertices(); ++v) {
      ASSERT_EQ(got_parent[q][v], want[v])
          << "query " << q << " root " << roots[q] << " vertex " << v;
      ecc = std::max(ecc, levels[v]);
    }
    EXPECT_EQ(int64_t(got_levels[q]), ecc) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededConfigs, MsbfsOracle,
    ::testing::Values(
        MsbfsCase{21, 10, 2, 2, int(service::kMaxBatchWidth), 2, true, false},
        MsbfsCase{22, 10, 2, 2, 5, 1, true, true},
        MsbfsCase{23, 9, 1, 2, 16, 4, false, false},
        MsbfsCase{24, 10, 2, 1, 33, 2, true, false}));

// ----------------------------- MS-BFS recovery vs the canonical oracle

// Rollback-and-replay must be invisible in the output: MS-BFS recovering
// from each FaultKind returns parents bit-identical to the serial canonical
// oracle — i.e. identical to a fault-free run — across thread counts and
// with the wire encoding on and off (corruption then hits *encoded*
// payloads and detection goes through the block checksums).
struct MsbfsFaultCase {
  sim::FaultKind kind;
  int threads;
  bool encoding;
};

class MsbfsFaultOracle : public ::testing::TestWithParam<MsbfsFaultCase> {};

sim::FaultPlan plan_for(sim::FaultKind kind) {
  sim::FaultPlan plan;
  switch (kind) {
    case sim::FaultKind::Straggler:
      plan.add_straggler(1, sim::CollectiveType::Allreduce, 2, 1e-3);
      break;
    case sim::FaultKind::BitFlip:
      plan.add_bitflip(1, sim::CollectiveType::Alltoallv, 1);
      break;
    case sim::FaultKind::Truncate:
      plan.add_truncate(0, sim::CollectiveType::Alltoallv, 2);
      break;
    case sim::FaultKind::RankFailure:
      plan.add_rank_failure(1, 2);
      break;
  }
  return plan;
}

TEST_P(MsbfsFaultOracle, RecoveredParentsEqualCanonicalReference) {
  const MsbfsFaultCase c = GetParam();
  SCOPED_TRACE(std::string("kind ") + sim::fault_kind_name(c.kind) +
               ", threads " + std::to_string(c.threads) + ", encoding " +
               (c.encoding ? "on" : "off"));
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 31;
  const sim::MeshShape mesh{2, 2};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  const int width = 9;

  const sim::FaultPlan plan = plan_for(c.kind);
  sim::SpmdOptions opts;
  opts.policy = sim::FaultPolicy::Recover;
  opts.faults = &plan;

  std::vector<Vertex> roots;
  std::vector<std::vector<Vertex>> got_parent;
  auto report = sim::run_spmd(sim::Topology(mesh), [&](sim::RankContext& ctx) {
    // Setup is outside the recoverable surface: the plan's call indices
    // must count the engine's collectives alone (the session layer uses
    // the same arming discipline).
    ctx.faults.armed = false;
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_1d(ctx, space, slice);
    auto keys = bfs::pick_search_keys(ctx, space, degrees, width, cfg.seed);
    service::MsbfsOptions mopts;
    mopts.threads_per_rank = c.threads;
    mopts.encoding.enabled = c.encoding;
    ctx.faults.armed = true;
    auto batch = service::msbfs_run(ctx, part, keys, mopts);
    ctx.faults.armed = false;
    const uint64_t local = space.count(ctx.rank);
    std::vector<std::vector<Vertex>> gathered(keys.size());
    for (size_t q = 0; q < keys.size(); ++q)
      gathered[q] = ctx.world.allgatherv(std::span<const Vertex>(
          batch.parent.data() + q * local, local));
    if (ctx.rank == 0) {
      roots = keys;
      got_parent = std::move(gathered);
    }
  }, opts);
  ASSERT_TRUE(report.ok()) << report.errors.front();

  // The plan must actually have fired, and the corrupting/fatal kinds must
  // have gone through detection + rollback-and-replay.
  const sim::FaultStats totals = report.fault_totals();
  EXPECT_GE(totals.injected(), 1u);
  if (c.kind != sim::FaultKind::Straggler) EXPECT_GE(totals.recovered, 1u);

  auto edges = graph::generate_rmat(cfg);
  std::vector<std::vector<Vertex>> adj(cfg.num_vertices());
  for (const auto& e : edges) {
    if (e.u == e.v) continue;
    adj[size_t(e.u)].push_back(e.v);
    adj[size_t(e.v)].push_back(e.u);
  }
  ASSERT_EQ(roots.size(), size_t(width));
  for (size_t q = 0; q < roots.size(); ++q) {
    auto ref = graph::reference_bfs(cfg.num_vertices(), edges, roots[q]);
    auto levels = graph::levels_from_parents(cfg.num_vertices(), ref, roots[q]);
    auto want = canonical_parents(cfg.num_vertices(), adj, levels, roots[q]);
    for (uint64_t v = 0; v < cfg.num_vertices(); ++v)
      ASSERT_EQ(got_parent[q][v], want[v])
          << "query " << q << " root " << roots[q] << " vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EveryFaultKind, MsbfsFaultOracle,
    ::testing::Values(
        MsbfsFaultCase{sim::FaultKind::Straggler, 1, true},
        MsbfsFaultCase{sim::FaultKind::Straggler, 4, true},
        MsbfsFaultCase{sim::FaultKind::Straggler, 1, false},
        MsbfsFaultCase{sim::FaultKind::Straggler, 4, false},
        MsbfsFaultCase{sim::FaultKind::BitFlip, 1, true},
        MsbfsFaultCase{sim::FaultKind::BitFlip, 4, true},
        MsbfsFaultCase{sim::FaultKind::BitFlip, 1, false},
        MsbfsFaultCase{sim::FaultKind::BitFlip, 4, false},
        MsbfsFaultCase{sim::FaultKind::Truncate, 1, true},
        MsbfsFaultCase{sim::FaultKind::Truncate, 4, true},
        MsbfsFaultCase{sim::FaultKind::Truncate, 1, false},
        MsbfsFaultCase{sim::FaultKind::Truncate, 4, false},
        MsbfsFaultCase{sim::FaultKind::RankFailure, 1, true},
        MsbfsFaultCase{sim::FaultKind::RankFailure, 4, true},
        MsbfsFaultCase{sim::FaultKind::RankFailure, 1, false},
        MsbfsFaultCase{sim::FaultKind::RankFailure, 4, false}));

// ------------------------------- acceptance: on/off bit-identity

// Parent claims are store_max reductions per level, so enabling the wire
// encoding (which reorders messages inside a block) must not change a
// single output word — at 1 worker thread or 4.
TEST(EncodingBitIdentity, ParentsAndDepthsIdenticalOnAndOff) {
  Graph500Config cfg;
  cfg.scale = 11;
  cfg.seed = 42;
  const sim::MeshShape mesh{2, 2};
  const Vertex root = pick_root(cfg);
  for (int threads : {1, 4}) {
    auto on = run_15d(cfg, mesh, root, threads, true);
    auto off = run_15d(cfg, mesh, root, threads, false);
    ASSERT_EQ(on, off) << "1.5d parents differ at " << threads << " threads";
    auto lv_on = graph::levels_from_parents(cfg.num_vertices(), on, root);
    auto lv_off = graph::levels_from_parents(cfg.num_vertices(), off, root);
    EXPECT_EQ(lv_on, lv_off);

    auto on1 = run_1d(cfg, mesh, root, threads, true);
    auto off1 = run_1d(cfg, mesh, root, threads, false);
    ASSERT_EQ(on1, off1) << "1d parents differ at " << threads << " threads";
  }
}

// --------------------------------------- seeded randomized sweep

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? std::strtoull(s, nullptr, 10)
                                      : fallback;
}

// Sample full-pipeline configurations (engine, scale, mesh, roots, threads,
// encoding, fault plan) and require every one to validate.  Shallow by
// default; nightly depth via SUNBFS_SWEEP_ITERS.  A failing draw prints one
// copy-paste graph500_runner invocation that replays it exactly.
TEST(RandomizedSweep, SampledPipelinesValidateOrPrintRepro) {
  const uint64_t seed = env_u64("SUNBFS_SWEEP_SEED", 2026);
  const uint64_t iters = env_u64("SUNBFS_SWEEP_ITERS", 2);
  Xoshiro256StarStar rng(seed);
  static const sim::MeshShape kMeshes[] = {{1, 2}, {2, 2}, {2, 4}, {4, 4}};
  static const int kThreads[] = {1, 2, 4};

  for (uint64_t it = 0; it < iters; ++it) {
    bfs::RunnerConfig cfg;
    cfg.graph.scale = int(9 + rng.next() % 3);
    cfg.graph.seed = 1 + rng.next() % 1000;
    static const bfs::EngineKind kKinds[] = {
        bfs::EngineKind::OneFiveD, bfs::EngineKind::OneD,
        bfs::EngineKind::Async};
    cfg.engine = kKinds[rng.next() % 3];
    cfg.num_roots = int(1 + rng.next() % 3);
    const int threads = kThreads[rng.next() % 3];
    cfg.bfs.threads_per_rank = threads;
    cfg.bfs1d.threads_per_rank = threads;
    cfg.bfsasync.threads_per_rank = threads;
    const bool encoding = rng.next() % 2 == 0;
    cfg.bfs.encoding.enabled = encoding;
    cfg.bfs1d.encoding.enabled = encoding;
    cfg.bfsasync.encoding.enabled = encoding;
    const sim::MeshShape mesh = kMeshes[rng.next() % 4];
    const bool faulty = rng.next() % 2 == 0;
    const uint64_t fault_seed = 1 + rng.next() % 64;
    sim::FaultPlan plan;
    if (faulty) {
      plan = sim::FaultPlan::random(fault_seed, mesh.ranks(),
                                    /*stragglers=*/1, /*corruptions=*/2,
                                    /*failures=*/1);
      cfg.faults = &plan;
      cfg.fault_policy = sim::FaultPolicy::Recover;
    }
    cfg.validate = true;

    std::string repro =
        "graph500_runner --scale " + std::to_string(cfg.graph.scale) +
        " --seed " + std::to_string(cfg.graph.seed) + " --rows " +
        std::to_string(mesh.rows) + " --cols " + std::to_string(mesh.cols) +
        " --roots " + std::to_string(cfg.num_roots) + " --threads-per-rank " +
        std::to_string(threads) + " --engine " +
        bfs::engine_kind_name(cfg.engine);
    if (faulty)
      repro += " --faults " + std::to_string(fault_seed) +
               " --fault-policy recover";
    if (!encoding) repro += " --no-encoding";
    SCOPED_TRACE("repro: " + repro);

    sim::Topology topo(mesh);
    bfs::RunnerResult result;
    try {
      result = bfs::run_graph500(topo, cfg);
    } catch (const std::exception& e) {
      ADD_FAILURE() << "sweep draw " << it << " threw: " << e.what()
                    << "\n  repro: " << repro;
      continue;
    }
    EXPECT_TRUE(result.spmd.ok())
        << "sweep draw " << it << " SPMD errors\n  repro: " << repro;
    EXPECT_TRUE(result.all_valid)
        << "sweep draw " << it << " failed validation\n  repro: " << repro;
  }
}

}  // namespace
}  // namespace sunbfs
