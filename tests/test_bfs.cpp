// Correctness tests for the BFS engines: every engine configuration must
// produce a parent array that passes Graph 500 validation and reaches
// exactly the same vertex set as the serial reference BFS.
#include <gtest/gtest.h>

#include <numeric>
#include <optional>

#include "bfs/bfs15d.hpp"
#include "bfs/bfs1d.hpp"
#include "bfs/runner.hpp"
#include "bfs/gathered_frontier.hpp"
#include "bfs/vertex_cut.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/part1d.hpp"
#include "sim/fault.hpp"
#include "sim/runtime.hpp"

namespace sunbfs::bfs {
namespace {

using graph::Edge;
using graph::Graph500Config;
using graph::Vertex;
using graph::kNoVertex;

std::vector<Edge> slice_of(const Graph500Config& cfg, int rank, int nranks) {
  uint64_t m = cfg.num_edges();
  return graph::generate_rmat_range(cfg, m * uint64_t(rank) / uint64_t(nranks),
                                    m * uint64_t(rank + 1) / uint64_t(nranks));
}

/// Run the 1.5D engine over `mesh` and return the assembled global parent
/// array plus (optionally) rank-0's stats.
std::vector<Vertex> run_15d(const Graph500Config& cfg, sim::MeshShape mesh,
                            partition::DegreeThresholds th, Vertex root,
                            Bfs15dOptions opts = {},
                            BfsStats* stats_out = nullptr,
                            chip::Geometry chip_geo = chip::Geometry::tiny()) {
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<Vertex> global_parent;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto deg = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_15d(ctx, space, slice, deg, th);
    std::optional<chip::Chip> chip;
    Bfs15dOptions o = opts;
    if (o.pull_kernel != Bfs15dOptions::EhPullKernel::Host) {
      chip.emplace(chip_geo);
      o.chip = &*chip;
    }
    auto res = bfs15d_run(ctx, part, root, o);
    auto gathered =
        ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    if (ctx.rank == 0) {
      global_parent = std::move(gathered);
      if (stats_out) *stats_out = res.stats;
    }
  });
  return global_parent;
}

void expect_equivalent_to_reference(const Graph500Config& cfg, Vertex root,
                                    std::span<const Vertex> parent) {
  auto edges = graph::generate_rmat(cfg);
  auto res = graph::validate_bfs(cfg.num_vertices(), edges, root, parent);
  EXPECT_TRUE(res.ok) << res.error;
  auto ref = graph::reference_bfs(cfg.num_vertices(), edges, root);
  uint64_t ref_reached = 0;
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v) {
    if (ref[v] != kNoVertex) ++ref_reached;
    ASSERT_EQ(parent[v] != kNoVertex, ref[v] != kNoVertex)
        << "reachability mismatch at vertex " << v;
  }
  EXPECT_EQ(res.reached, ref_reached);
}

Vertex pick_root(const Graph500Config& cfg) {
  auto edges = graph::generate_rmat_range(cfg, 0, 1);
  return edges[0].u;
}

// ---------------------------------------------------------------- 1.5D

struct Case15d {
  int rows, cols;
  int scale;
  uint64_t e_th, h_th;
  bool sub_iter;
};

class Bfs15dCases : public ::testing::TestWithParam<Case15d> {};

TEST_P(Bfs15dCases, ValidatesAndMatchesReference) {
  auto c = GetParam();
  Graph500Config cfg;
  cfg.scale = c.scale;
  cfg.seed = 3;
  Bfs15dOptions opts;
  opts.sub_iteration_direction = c.sub_iter;
  Vertex root = pick_root(cfg);
  auto parent = run_15d(cfg, sim::MeshShape{c.rows, c.cols},
                        partition::DegreeThresholds{c.e_th, c.h_th}, root,
                        opts);
  expect_equivalent_to_reference(cfg, root, parent);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, Bfs15dCases,
    ::testing::Values(
        Case15d{1, 1, 9, 64, 16, true},      // single rank
        Case15d{2, 2, 10, 64, 16, true},     // square mesh
        Case15d{1, 4, 10, 64, 16, true},     // single row
        Case15d{4, 1, 10, 64, 16, true},     // single column
        Case15d{2, 3, 10, 64, 16, true},     // rectangular
        Case15d{2, 2, 10, 64, 16, false},    // whole-iteration direction
        Case15d{2, 2, 10, 64, 64, true},     // |H| = 0 (1D-delegate-like)
        Case15d{2, 2, 9, 512, 0, true},      // |L| = 0 (2D-like)
        Case15d{2, 2, 10, 1u << 30, 1u << 30, true},  // no EH at all (pure 1D)
        Case15d{3, 2, 11, 128, 32, true}));  // larger scale

TEST(Bfs15d, MultipleRootsAllValid) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 11;
  auto edges = graph::generate_rmat(cfg);
  for (uint64_t i = 17; i < 17 + 4; ++i) {
    Vertex root = edges[i * 101].v;
    auto parent = run_15d(cfg, sim::MeshShape{2, 2},
                          partition::DegreeThresholds{128, 32}, root);
    auto res = graph::validate_bfs(cfg.num_vertices(), edges, root, parent);
    EXPECT_TRUE(res.ok) << "root " << root << ": " << res.error;
  }
}

TEST(Bfs15d, IsolatedRootTerminatesImmediately) {
  // A root with no edges must yield a tree containing only the root.
  Graph500Config cfg;
  cfg.scale = 10;
  auto edges = graph::generate_rmat(cfg);
  auto deg = graph::undirected_degrees(cfg.num_vertices(), edges);
  Vertex isolated = kNoVertex;
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v)
    if (deg[v] == 0) {
      isolated = Vertex(v);
      break;
    }
  ASSERT_NE(isolated, kNoVertex) << "scale 10 R-MAT should have isolated vertices";
  auto parent = run_15d(cfg, sim::MeshShape{2, 2},
                        partition::DegreeThresholds{128, 32}, isolated);
  uint64_t reached = 0;
  for (Vertex p : parent)
    if (p != kNoVertex) ++reached;
  EXPECT_EQ(reached, 1u);
  EXPECT_EQ(parent[size_t(isolated)], isolated);
}

TEST(Bfs15d, DelayedAndEagerReductionAgree) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 5;
  Vertex root = pick_root(cfg);
  Bfs15dOptions delayed;
  delayed.delayed_parent_reduction = true;
  Bfs15dOptions eager;
  eager.delayed_parent_reduction = false;
  auto p1 = run_15d(cfg, sim::MeshShape{2, 2},
                    partition::DegreeThresholds{128, 32}, root, delayed);
  auto p2 = run_15d(cfg, sim::MeshShape{2, 2},
                    partition::DegreeThresholds{128, 32}, root, eager);
  // Both must validate; reachability must agree (parents may differ).
  expect_equivalent_to_reference(cfg, root, p1);
  expect_equivalent_to_reference(cfg, root, p2);
}

TEST(Bfs15d, ChipPullKernelsMatchHost) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 9;
  Vertex root = pick_root(cfg);
  partition::DegreeThresholds th{128, 32};
  auto host = run_15d(cfg, sim::MeshShape{2, 2}, th, root);
  for (auto kernel : {Bfs15dOptions::EhPullKernel::ChipGld,
                      Bfs15dOptions::EhPullKernel::ChipRma}) {
    Bfs15dOptions opts;
    opts.pull_kernel = kernel;
    auto parent = run_15d(cfg, sim::MeshShape{2, 2}, th, root, opts);
    expect_equivalent_to_reference(cfg, root, parent);
    for (size_t v = 0; v < host.size(); ++v)
      ASSERT_EQ(parent[v] != kNoVertex, host[v] != kNoVertex);
  }
}

TEST(Bfs15d, SegmentedPullIsFasterThanGldOnModeledClock) {
  // Figure 15's claim at kernel level: the RMA-segmented pull beats the GLD
  // baseline on the modeled clock.
  Graph500Config cfg;
  cfg.scale = 11;
  cfg.seed = 2;
  Vertex root = pick_root(cfg);
  partition::DegreeThresholds th{64, 16};
  BfsStats gld, rma;
  Bfs15dOptions o1;
  o1.pull_kernel = Bfs15dOptions::EhPullKernel::ChipGld;
  run_15d(cfg, sim::MeshShape{1, 1}, th, root, o1, &gld);
  Bfs15dOptions o2;
  o2.pull_kernel = Bfs15dOptions::EhPullKernel::ChipRma;
  run_15d(cfg, sim::MeshShape{1, 1}, th, root, o2, &rma);
  double gld_pull = gld.pull_cpu_s[int(partition::Subgraph::EH2EH)];
  double rma_pull = rma.pull_cpu_s[int(partition::Subgraph::EH2EH)];
  ASSERT_GT(gld_pull, 0.0);
  ASSERT_GT(rma_pull, 0.0);
  EXPECT_GT(gld_pull / rma_pull, 2.0);
}

TEST(Bfs15d, StatsAreInternallyConsistent) {
  Graph500Config cfg;
  cfg.scale = 10;
  Vertex root = pick_root(cfg);
  BfsStats stats;
  run_15d(cfg, sim::MeshShape{2, 2}, partition::DegreeThresholds{128, 32},
          root, {}, &stats);
  EXPECT_GT(stats.num_iterations, 1);
  EXPECT_EQ(stats.iterations.size(), size_t(stats.num_iterations));
  EXPECT_GT(stats.total_cpu_s(), 0.0);
  EXPECT_GT(stats.total_comm_modeled_s(), 0.0);
  // Iteration 1 contains exactly the root.
  const auto& it1 = stats.iterations[0];
  EXPECT_EQ(it1.active_e + it1.active_h + it1.active_l, 1u);
}

TEST(Bfs15d, ActivationPeaksEarlierForHubs) {
  // Figure 5's shape: the iteration where E peaks is never later than the
  // iteration where L peaks.
  Graph500Config cfg;
  cfg.scale = 12;
  cfg.seed = 21;
  Vertex root = pick_root(cfg);
  BfsStats stats;
  run_15d(cfg, sim::MeshShape{2, 2}, partition::DegreeThresholds{256, 64},
          root, {}, &stats);
  int peak_e = 0, peak_l = 0;
  uint64_t best_e = 0, best_l = 0;
  for (const auto& it : stats.iterations) {
    if (it.active_e > best_e) {
      best_e = it.active_e;
      peak_e = it.iteration;
    }
    if (it.active_l > best_l) {
      best_l = it.active_l;
      peak_l = it.iteration;
    }
  }
  EXPECT_LE(peak_e, peak_l);
}

TEST(Bfs15d, L2lForwardingMatchesDirect) {
  // The hierarchical forwarding of SS4.4 must reach exactly the same tree.
  Graph500Config cfg;
  cfg.scale = 11;
  cfg.seed = 6;
  Vertex root = pick_root(cfg);
  partition::DegreeThresholds th{1u << 30, 1u << 30};  // everything L2L
  auto direct = run_15d(cfg, sim::MeshShape{3, 2}, th, root);
  Bfs15dOptions fwd;
  fwd.l2l_forwarding = true;
  auto forwarded = run_15d(cfg, sim::MeshShape{3, 2}, th, root, fwd);
  expect_equivalent_to_reference(cfg, root, forwarded);
  for (size_t v = 0; v < direct.size(); ++v)
    ASSERT_EQ(direct[v] != kNoVertex, forwarded[v] != kNoVertex);
}

TEST(Bfs15d, L2lForwardingReducesConnections) {
  // Forwarding trades one global alltoallv for two mesh-limited ones; the
  // point-to-point fan-out per rank drops from P-1 to (R-1)+(C-1).
  Graph500Config cfg;
  cfg.scale = 12;
  cfg.seed = 6;
  Vertex root = pick_root(cfg);
  partition::DegreeThresholds th{1u << 30, 1u << 30};
  BfsStats direct, fwd;
  run_15d(cfg, sim::MeshShape{3, 3}, th, root, {}, &direct);
  Bfs15dOptions o;
  o.l2l_forwarding = true;
  run_15d(cfg, sim::MeshShape{3, 3}, th, root, o, &fwd);
  // Forwarded bytes pass the network twice, so sent bytes roughly double...
  const auto& d = direct.comm.entry(sim::CollectiveType::Alltoallv);
  const auto& f = fwd.comm.entry(sim::CollectiveType::Alltoallv);
  EXPECT_GT(f.calls, d.calls);  // two stages per push iteration
  EXPECT_GT(f.bytes_sent, d.bytes_sent);
}

TEST(Bfs15d, RootsFromEveryDegreeClass) {
  // The root may be an E hub, an H vertex or an L vertex; all must work.
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 71;
  auto edges = graph::generate_rmat(cfg);
  auto deg = graph::undirected_degrees(cfg.num_vertices(), edges);
  partition::DegreeThresholds th{256, 64};
  Vertex e_root = kNoVertex, h_root = kNoVertex, l_root = kNoVertex;
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v) {
    if (deg[v] >= th.e && e_root == kNoVertex) e_root = Vertex(v);
    else if (deg[v] >= th.h && deg[v] < th.e && h_root == kNoVertex)
      h_root = Vertex(v);
    else if (deg[v] > 0 && deg[v] < th.h && l_root == kNoVertex)
      l_root = Vertex(v);
  }
  for (Vertex root : {e_root, h_root, l_root}) {
    ASSERT_NE(root, kNoVertex);
    auto parent = run_15d(cfg, sim::MeshShape{2, 2}, th, root);
    auto res = graph::validate_bfs(cfg.num_vertices(), edges, root, parent);
    EXPECT_TRUE(res.ok) << "root " << root << ": " << res.error;
    EXPECT_EQ(parent[size_t(root)], root);
  }
}

TEST(Bfs15d, CustomSupernodeMappingStillValidates) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 73;
  Vertex root = pick_root(cfg);
  sim::TopologyParams params;
  params.ranks_per_supernode = 2;  // not equal to the mesh column count
  params.oversubscription = 16;
  sim::Topology topo(sim::MeshShape{2, 3}, params);
  partition::VertexSpace space{cfg.num_vertices(), topo.mesh().ranks()};
  std::vector<Vertex> parent;
  sim::run_spmd(topo, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto deg = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_15d(ctx, space, slice, deg, {128, 32});
    auto res = bfs15d_run(ctx, part, root);
    auto gathered =
        ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    if (ctx.rank == 0) parent = std::move(gathered);
  });
  expect_equivalent_to_reference(cfg, root, parent);
}

// ---------------------------------------------------------------- 1D

class Bfs1dCases : public ::testing::TestWithParam<sim::MeshShape> {};

TEST_P(Bfs1dCases, ValidatesAndMatchesReference) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 13;
  Vertex root = pick_root(cfg);
  sim::MeshShape mesh = GetParam();
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<Vertex> parent;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto part = partition::build_1d(ctx, space, slice);
    auto res = bfs1d_run(ctx, part, root);
    auto gathered = ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    if (ctx.rank == 0) parent = std::move(gathered);
  });
  expect_equivalent_to_reference(cfg, root, parent);
}

INSTANTIATE_TEST_SUITE_P(Meshes, Bfs1dCases,
                         ::testing::Values(sim::MeshShape{1, 1},
                                           sim::MeshShape{2, 2},
                                           sim::MeshShape{1, 3}));

// --------------------------------------- thread-count determinism (tpr sweep)

std::vector<Vertex> run_1d(const Graph500Config& cfg, sim::MeshShape mesh,
                           Vertex root, const Bfs1dOptions& opts) {
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<Vertex> parent;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto part = partition::build_1d(ctx, space, slice);
    auto res = bfs1d_run(ctx, part, root, opts);
    auto gathered = ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    if (ctx.rank == 0) parent = std::move(gathered);
  });
  return parent;
}

/// The determinism contract (docs/PERF.md): the sweep's first run must be a
/// Graph500-valid tree matching the reference component, and every other
/// run must reproduce it bit for bit — identical parent arrays, hence
/// identical depth arrays — independent of threads_per_rank.
void expect_identical_sweep(const Graph500Config& cfg, Vertex root,
                            const std::vector<std::vector<Vertex>>& parents) {
  ASSERT_FALSE(parents.empty());
  ASSERT_FALSE(parents[0].empty());
  expect_equivalent_to_reference(cfg, root, parents[0]);
  auto depth0 =
      graph::levels_from_parents(cfg.num_vertices(), parents[0], root);
  for (size_t i = 1; i < parents.size(); ++i) {
    ASSERT_EQ(parents[i], parents[0])
        << "parent array differs at sweep index " << i;
    auto depth =
        graph::levels_from_parents(cfg.num_vertices(), parents[i], root);
    ASSERT_EQ(depth, depth0) << "depth array differs at sweep index " << i;
  }
}

TEST(ThreadDeterminism, Bfs15dBitIdenticalAcrossThreadCounts) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 17;
  Vertex root = pick_root(cfg);
  std::vector<std::vector<Vertex>> parents;
  for (int tpr : {1, 2, 4}) {
    Bfs15dOptions o;
    o.threads_per_rank = tpr;
    parents.push_back(run_15d(cfg, sim::MeshShape{2, 2},
                              partition::DegreeThresholds{128, 32}, root, o));
  }
  expect_identical_sweep(cfg, root, parents);
}

TEST(ThreadDeterminism, Bfs15dForwardingSweepAlsoIdentical) {
  // All-L thresholds with L2L forwarding exercises the two-hop staged path.
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 23;
  Vertex root = pick_root(cfg);
  std::vector<std::vector<Vertex>> parents;
  for (int tpr : {1, 2, 4}) {
    Bfs15dOptions o;
    o.threads_per_rank = tpr;
    o.l2l_forwarding = true;
    parents.push_back(
        run_15d(cfg, sim::MeshShape{3, 2},
                partition::DegreeThresholds{1u << 30, 1u << 30}, root, o));
  }
  expect_identical_sweep(cfg, root, parents);
}

TEST(ThreadDeterminism, Bfs1dBitIdenticalAcrossThreadCounts) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 13;
  Vertex root = pick_root(cfg);
  std::vector<std::vector<Vertex>> parents;
  for (int tpr : {1, 2, 4}) {
    Bfs1dOptions o;
    o.threads_per_rank = tpr;
    parents.push_back(run_1d(cfg, sim::MeshShape{1, 3}, root, o));
  }
  expect_identical_sweep(cfg, root, parents);
}

TEST(ThreadDeterminism, RecoveredFaultRunIdenticalAcrossThreadCounts) {
  // Checkpointed recovery replays levels; the replayed run must still be
  // bit-identical at every thread count (and to the fault-free tree).
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 5;
  sim::MeshShape mesh{2, 2};
  Vertex root = pick_root(cfg);
  sim::FaultPlan plan;
  plan.add_rank_failure(1, 2);
  std::vector<std::vector<Vertex>> parents;
  for (int tpr : {0 /* clean baseline below uses tpr=1 */, 1, 2, 4}) {
    partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
    sim::SpmdOptions sopts;
    if (tpr != 0) {
      sopts.policy = sim::FaultPolicy::Recover;
      sopts.faults = &plan;
    }
    std::vector<Vertex> parent;
    auto report = sim::run_spmd(
        sim::Topology(mesh),
        [&](sim::RankContext& ctx) {
          ctx.faults.armed = false;  // setup runs fault-free, as in the runner
          auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
          auto deg = partition::compute_local_degrees(ctx, space, slice);
          auto part = partition::build_15d(ctx, space, slice, deg, {128, 32});
          ctx.faults.armed = true;
          Bfs15dOptions o;
          o.threads_per_rank = tpr == 0 ? 1 : tpr;
          auto res = bfs15d_run(ctx, part, root, o);
          ctx.faults.armed = false;
          auto gathered =
              ctx.world.allgatherv(std::span<const Vertex>(res.parent));
          if (ctx.rank == 0) parent = std::move(gathered);
        },
        sopts);
    ASSERT_TRUE(report.ok());
    if (tpr != 0) {
      EXPECT_GT(report.fault_totals().recovered, 0u);
    }
    parents.push_back(std::move(parent));
  }
  expect_identical_sweep(cfg, root, parents);
}

// --------------------------------------------------------- gathered frontier

TEST(GatheredFrontier, AssemblesPerRankBitmaps) {
  sim::run_spmd(sim::MeshShape{1, 3}, [&](sim::RankContext& ctx) {
    // Rank r's bitmap has 10*(r+1) bits with bit (7*r % size) set.
    BitVector mine(uint64_t(10 * (ctx.rank + 1)));
    mine.set(uint64_t(7 * ctx.rank) % mine.size());
    auto g = GatheredFrontier::gather(ctx.world, mine);
    for (int r = 0; r < 3; ++r) {
      uint64_t size = uint64_t(10 * (r + 1));
      uint64_t set_bit = uint64_t(7 * r) % size;
      for (uint64_t i = 0; i < size; ++i)
        ASSERT_EQ(g.get(r, i), i == set_bit) << "rank " << r << " bit " << i;
    }
  });
}

// ---------------------------------------------------------------- vertex cut

TEST(VertexCut, CoversFrontierExactlyOnce) {
  ThreadPool pool(4);
  std::vector<uint64_t> frontier(1000);
  std::iota(frontier.begin(), frontier.end(), 0);
  // Extremely skewed "degrees": vertex 0 has nearly all edges.
  auto deg = [](uint64_t v) { return v == 0 ? uint64_t(1) << 20 : 1; };
  std::vector<std::atomic<int>> hits(frontier.size());
  edge_aware_foreach(frontier, deg, pool,
                     [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(VertexCut, EmptyAndTinyFrontiers) {
  ThreadPool pool(2);
  std::vector<uint64_t> empty;
  int calls = 0;
  edge_aware_foreach(empty, [](uint64_t) { return 1; }, pool,
                     [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<uint64_t> one = {42};
  edge_aware_foreach(one, [](uint64_t) { return 0; }, pool,
                     [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------- runner

TEST(Runner, EndToEndGraph500Conformance) {
  RunnerConfig cfg;
  cfg.graph.scale = 10;
  cfg.graph.seed = 31;
  cfg.thresholds = {128, 32};
  cfg.num_roots = 4;
  sim::Topology topo(sim::MeshShape{2, 2});
  auto result = run_graph500(topo, cfg);
  EXPECT_TRUE(result.all_valid);
  EXPECT_EQ(result.runs.size(), 4u);
  EXPECT_GT(result.harmonic_gteps, 0.0);
  EXPECT_GT(result.num_eh, 0u);
  for (const auto& r : result.runs) {
    EXPECT_TRUE(r.valid) << r.error;
    EXPECT_GT(r.traversed_edges, 0u);
    EXPECT_GT(r.modeled_s, 0.0);
  }
}

TEST(Runner, OneDEngineAlsoValidates) {
  RunnerConfig cfg;
  cfg.graph.scale = 9;
  cfg.engine = EngineKind::OneD;
  cfg.num_roots = 3;
  sim::Topology topo(sim::MeshShape{1, 2});
  auto result = run_graph500(topo, cfg);
  EXPECT_TRUE(result.all_valid);
}

// pick_search_keys is the shared root-selection protocol (BFS runner, SSSP
// runner, query service): pinned literals guard the exact RNG stream, and
// the keys must not depend on the mesh the selection runs on.
TEST(Runner, PickSearchKeysPinnedAndMeshIndependent) {
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 3;
  auto keys_on = [&](sim::MeshShape mesh) {
    partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
    std::vector<Vertex> keys;
    sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
      auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
      auto deg = partition::compute_local_degrees(ctx, space, slice);
      auto k = pick_search_keys(ctx, space, deg, 6, /*seed=*/42);
      if (ctx.rank == 0) keys = k;
    });
    return keys;
  };

  auto keys = keys_on(sim::MeshShape{2, 2});
  ASSERT_EQ(keys.size(), 6u);
  EXPECT_EQ(keys_on(sim::MeshShape{1, 3}), keys);

  // Pinned for (scale 9, graph seed 3, selection seed 42) — a change here
  // means the selection protocol changed and every recorded experiment's
  // roots moved with it.
  std::vector<Vertex> expected = {42, 194, 348, 507, 368, 435};
  EXPECT_EQ(keys, expected);

  // Every key must carry at least one edge.
  auto edges = graph::generate_rmat(cfg);
  std::vector<uint64_t> degree(cfg.num_vertices(), 0);
  for (const auto& e : edges) {
    ++degree[size_t(e.u)];
    ++degree[size_t(e.v)];
  }
  for (Vertex k : keys) EXPECT_GE(degree[size_t(k)], 1u) << "key " << k;
}

TEST(Runner, RootsAreDeterministicAcrossEngines) {
  RunnerConfig a;
  a.graph.scale = 9;
  a.num_roots = 3;
  a.root_seed = 77;
  RunnerConfig b = a;
  b.engine = EngineKind::OneD;
  sim::Topology topo(sim::MeshShape{1, 2});
  auto ra = run_graph500(topo, a);
  auto rb = run_graph500(topo, b);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ra.runs[i].root, rb.runs[i].root);
    EXPECT_EQ(ra.runs[i].traversed_edges, rb.runs[i].traversed_edges);
  }
}

}  // namespace
}  // namespace sunbfs::bfs
