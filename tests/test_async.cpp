// Asynchronous-engine suite (ctest -L async, also picked up by the
// differential and faults jobs):
//
//   1. TerminationDetector unit tests — delayed credit delivery, the
//      zero-frontier root, a message-in-flight-at-probe reactivation race,
//      the non-strict mode staged merging plans need, and rollback restore.
//   2. Relaxed-correctness differential oracle — bfsasync over seeded
//      (graph, mesh, threads, encoding, exchange backend) configurations,
//      R-MAT and high-diameter lattices: the tree passes the kernel-2
//      validator, every parent sits exactly one level above its child, and
//      the engine's own depth array bit-matches graph::reference_bfs.
//   3. Fault recovery — each FaultKind through checkpoint/rollback, with
//      recovery provably fired and outputs bit-identical to fault-free.
//   4. Bit-determinism — parents and depths identical across thread counts,
//      encoding on/off and exchange backends.
//   5. Engine-selection CLI — parse_engine_kind and the typed
//      unknown-choice rejection every driver prints.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "bfs/bfsasync.hpp"
#include "bfs/engine.hpp"
#include "graph/lattice.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/part1d.hpp"
#include "sim/fault.hpp"
#include "sim/runtime.hpp"
#include "sim/termination.hpp"

namespace sunbfs {
namespace {

using graph::Edge;
using graph::Graph500Config;
using graph::LatticeConfig;
using graph::Vertex;
using graph::kNoVertex;

// ------------------------------------ termination detector unit tests

// A root whose component is empty of work: the detector still needs two
// agreeing waves (the first has nothing to compare against).
TEST(TerminationDetector, ZeroWorkTerminatesOnSecondWave) {
  std::vector<int> probes;
  sim::run_spmd(sim::MeshShape{1, 2}, [&](sim::RankContext& ctx) {
    sim::TerminationDetector term;
    int p1 = term.probe(ctx.world, true) ? 1 : 0;
    int p2 = term.probe(ctx.world, true) ? 1 : 0;
    if (ctx.rank == 0) probes = {p1, p2};
    EXPECT_EQ(term.waves(), 2u);
  });
  EXPECT_EQ(probes, (std::vector<int>{0, 1}));
}

// A message counted as sent before a probe but delivered only after it:
// strict credits (sum S != sum R) block the first wave, the counter movement
// blocks the second, and only the third — stable and balanced — terminates.
TEST(TerminationDetector, DelayedCreditDeliveryBlocksTermination) {
  std::vector<int> probes;
  sim::run_spmd(sim::MeshShape{1, 2}, [&](sim::RankContext& ctx) {
    sim::TerminationDetector term;
    if (ctx.rank == 0) term.note_sent(1);
    int p1 = term.probe(ctx.world, true) ? 1 : 0;   // S=1, R=0: unbalanced
    if (ctx.rank == 1) term.note_received(1);       // delivery lands late
    int p2 = term.probe(ctx.world, true) ? 1 : 0;   // balanced but R moved
    int p3 = term.probe(ctx.world, true) ? 1 : 0;   // stable: terminate
    if (ctx.rank == 0) probes = {p1, p2, p3};
  });
  EXPECT_EQ(probes, (std::vector<int>{0, 0, 1}));
}

// The classic single-wave hazard: every rank reports idle while a message is
// still in flight, and its delivery reactivates the receiver (which then
// sends more).  The two-wave handshake must ride out the whole episode.
TEST(TerminationDetector, InFlightMessageReactivationIsNotTermination) {
  std::vector<int> probes;
  sim::run_spmd(sim::MeshShape{1, 2}, [&](sim::RankContext& ctx) {
    sim::TerminationDetector term;
    if (ctx.rank == 0) term.note_sent(1);
    // Both ranks claim idle, yet rank 0's message is in flight.
    int p1 = term.probe(ctx.world, true) ? 1 : 0;
    // It lands: rank 1 wakes up, does work, and replies.
    if (ctx.rank == 1) {
      term.note_received(1);
      term.note_sent(1);
    }
    int p2 = term.probe(ctx.world, ctx.rank != 1) ? 1 : 0;  // rank 1 busy
    if (ctx.rank == 0) term.note_received(1);
    int p3 = term.probe(ctx.world, true) ? 1 : 0;  // balanced but just moved
    int p4 = term.probe(ctx.world, true) ? 1 : 0;  // stable: terminate
    if (ctx.rank == 0) probes = {p1, p2, p3, p4};
  });
  EXPECT_EQ(probes, (std::vector<int>{0, 0, 0, 1}));
}

// Under a staged merging plan k same-target messages arrive as one, so
// received legitimately undershoots sent: the strict detector would never
// settle, the non-strict one terminates on stability + idleness alone.
TEST(TerminationDetector, NonStrictModeToleratesFoldedCredits) {
  std::vector<int> probes;
  sim::run_spmd(sim::MeshShape{1, 2}, [&](sim::RankContext& ctx) {
    sim::TerminationDetector strict(true);
    sim::TerminationDetector relaxed(false);
    if (ctx.rank == 0) {
      strict.note_sent(3);
      relaxed.note_sent(3);
    }
    if (ctx.rank == 1) {  // three claims folded into one delivery
      strict.note_received(1);
      relaxed.note_received(1);
    }
    int s1 = strict.probe(ctx.world, true) ? 1 : 0;
    int s2 = strict.probe(ctx.world, true) ? 1 : 0;
    int r1 = relaxed.probe(ctx.world, true) ? 1 : 0;
    int r2 = relaxed.probe(ctx.world, true) ? 1 : 0;
    if (ctx.rank == 0) probes = {s1, s2, r1, r2};
  });
  EXPECT_EQ(probes, (std::vector<int>{0, 0, 0, 1}));
}

// Rollback restores the credit counters and forgets the previous wave, so a
// replay restarts the two-wave handshake instead of inheriting a stale
// half-agreement.
TEST(TerminationDetector, RestoreRestartsTheHandshake) {
  std::vector<int> probes;
  sim::run_spmd(sim::MeshShape{1, 2}, [&](sim::RankContext& ctx) {
    sim::TerminationDetector term;
    const sim::TerminationDetector::Snapshot snap = term.save();
    int p1 = term.probe(ctx.world, true) ? 1 : 0;  // first wave
    term.restore(snap);                            // rollback fires here
    int p2 = term.probe(ctx.world, true) ? 1 : 0;  // handshake restarted
    int p3 = term.probe(ctx.world, true) ? 1 : 0;
    if (ctx.rank == 0) probes = {p1, p2, p3};
  });
  EXPECT_EQ(probes, (std::vector<int>{0, 0, 1}));
}

// ----------------------------------------- async differential oracle

struct AsyncOut {
  bool ok = false;
  std::string error;
  std::vector<Vertex> parent;   // gathered global order
  std::vector<int64_t> depth;   // gathered global order
  int rounds = 0;
  sim::FaultStats faults;
};

// Run the async engine on per-rank slices produced by `slice_fn(rank,
// nranks)` and gather the global parent and depth arrays.
template <class SliceFn>
AsyncOut run_async(uint64_t nv, sim::MeshShape mesh, Vertex root, int threads,
                   bool encoding, sim::ExchangeBackend backend,
                   SliceFn&& slice_fn, const sim::FaultPlan* faults = nullptr) {
  partition::VertexSpace space{nv, mesh.ranks()};
  AsyncOut out;
  sim::SpmdOptions sopts;
  if (faults != nullptr) {
    sopts.policy = sim::FaultPolicy::Recover;
    sopts.faults = faults;
  }
  auto report =
      sim::run_spmd(sim::Topology(mesh), [&](sim::RankContext& ctx) {
        ctx.faults.armed = false;  // setup outside the recoverable surface
        auto slice = slice_fn(ctx.rank, ctx.nranks());
        auto part = partition::build_1d(ctx, space, slice);
        bfs::BfsAsyncOptions opts;
        opts.threads_per_rank = threads;
        opts.encoding.enabled = encoding;
        opts.exchange.backend = backend;
        ctx.faults.armed = true;
        auto res = bfs::bfsasync_run(ctx, part, root, opts);
        ctx.faults.armed = false;
        auto gp = ctx.world.allgatherv(std::span<const Vertex>(res.parent));
        auto gd = ctx.world.allgatherv(std::span<const int64_t>(res.depth));
        if (ctx.rank == 0) {
          out.parent = std::move(gp);
          out.depth = std::move(gd);
          out.rounds = res.rounds;
        }
      }, sopts);
  out.ok = report.ok();
  if (!out.ok) out.error = report.errors.front();
  out.faults = report.fault_totals();
  return out;
}

std::vector<Edge> rmat_slice(const Graph500Config& cfg, int rank, int nranks) {
  uint64_t m = cfg.num_edges();
  return graph::generate_rmat_range(cfg, m * uint64_t(rank) / uint64_t(nranks),
                                    m * uint64_t(rank + 1) / uint64_t(nranks));
}

std::vector<Edge> lattice_slice(const LatticeConfig& cfg, int rank,
                                int nranks) {
  uint64_t m = cfg.num_edges();
  return graph::generate_lattice_range(cfg,
                                       m * uint64_t(rank) / uint64_t(nranks),
                                       m * uint64_t(rank + 1) / uint64_t(nranks));
}

// The relaxed-correctness oracle: quiescent output must be a valid BFS tree
// (kernel-2 validator: parent edges exist in the graph, the component is
// exactly covered), every non-root parent must sit exactly one level above
// its child *by the engine's own depths*, and those depths must bit-match
// the serial reference.
void expect_relaxed_oracle(uint64_t nv, std::span<const Edge> edges,
                           Vertex root, const AsyncOut& out) {
  ASSERT_TRUE(out.ok) << out.error;
  ASSERT_EQ(out.parent.size(), nv);
  ASSERT_EQ(out.depth.size(), nv);
  auto res = graph::validate_bfs(nv, edges, root, out.parent);
  ASSERT_TRUE(res.ok) << res.error;
  for (uint64_t v = 0; v < nv; ++v) {
    if (out.parent[v] == kNoVertex) {
      ASSERT_EQ(out.depth[v], -1) << "unreached vertex " << v << " has depth";
    } else if (Vertex(v) == root) {
      ASSERT_EQ(out.depth[v], 0);
      ASSERT_EQ(out.parent[v], root);
    } else {
      ASSERT_EQ(out.depth[size_t(out.parent[v])] + 1, out.depth[v])
          << "parent of " << v << " not one level up";
    }
  }
  auto ref = graph::reference_bfs(nv, edges, root);
  auto ref_depth = graph::levels_from_parents(nv, ref, root);
  for (uint64_t v = 0; v < nv; ++v)
    ASSERT_EQ(out.depth[v], ref_depth[v]) << "depth mismatch at " << v;
}

struct AsyncCase {
  const char* name;
  uint64_t seed;  // R-MAT seed; 0 selects a lattice (see lattice_of)
  int scale;
  LatticeConfig lattice;
  int rows, cols;
  int threads;
  bool encoding;
  sim::ExchangeBackend backend;
};

class AsyncOracle : public ::testing::TestWithParam<AsyncCase> {};

TEST_P(AsyncOracle, RelaxedQuiescentOutputMatchesReference) {
  const AsyncCase c = GetParam();
  SCOPED_TRACE(c.name);
  const sim::MeshShape mesh{c.rows, c.cols};
  if (c.seed != 0) {
    Graph500Config cfg;
    cfg.scale = c.scale;
    cfg.seed = c.seed;
    const Vertex root = graph::generate_rmat_range(cfg, 0, 1)[0].u;
    auto out = run_async(cfg.num_vertices(), mesh, root, c.threads,
                         c.encoding, c.backend, [&](int rank, int nranks) {
                           return rmat_slice(cfg, rank, nranks);
                         });
    auto edges = graph::generate_rmat(cfg);
    expect_relaxed_oracle(cfg.num_vertices(), edges, root, out);
  } else {
    const LatticeConfig cfg = c.lattice;
    const Vertex root = Vertex(cfg.num_vertices() / 3);
    auto out = run_async(cfg.num_vertices(), mesh, root, c.threads,
                         c.encoding, c.backend, [&](int rank, int nranks) {
                           return lattice_slice(cfg, rank, nranks);
                         });
    auto edges = graph::generate_lattice(cfg);
    expect_relaxed_oracle(cfg.num_vertices(), edges, root, out);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededConfigs, AsyncOracle,
    ::testing::Values(
        // R-MAT (low diameter): meshes x threads x encoding x backends.
        AsyncCase{"rmat_s9_1x2", 41, 9, {}, 1, 2, 1, true,
                  sim::ExchangeBackend::Direct},
        AsyncCase{"rmat_s10_2x2", 42, 10, {}, 2, 2, 4, true,
                  sim::ExchangeBackend::Direct},
        AsyncCase{"rmat_s10_2x2_raw", 43, 10, {}, 2, 2, 2, false,
                  sim::ExchangeBackend::Direct},
        AsyncCase{"rmat_s10_2x4_butterfly", 44, 10, {}, 2, 4, 2, true,
                  sim::ExchangeBackend::Butterfly},
        AsyncCase{"rmat_s11_2x4_2dca", 45, 11, {}, 2, 4, 4, true,
                  sim::ExchangeBackend::TwoDCA},
        AsyncCase{"rmat_s10_4x1", 46, 10, {}, 4, 1, 1, false,
                  sim::ExchangeBackend::Direct},
        // High-diameter lattices: the async engine's motivating regime.
        AsyncCase{"path_1024", 0, 0, LatticeConfig::path(1024), 2, 2, 2, true,
                  sim::ExchangeBackend::Direct},
        AsyncCase{"path_4096_2dca", 0, 0, LatticeConfig::path(4096), 2, 4, 4,
                  true, sim::ExchangeBackend::TwoDCA},
        AsyncCase{"grid_48x32", 0, 0, LatticeConfig::grid(48, 32), 2, 2, 2,
                  true, sim::ExchangeBackend::Direct},
        AsyncCase{"torus_32x32_butterfly", 0, 0, LatticeConfig::torus(32, 32),
                  2, 2, 4, false, sim::ExchangeBackend::Butterfly}));

// ------------------------------------------------ fault recovery

struct AsyncFaultCase {
  sim::FaultKind kind;
  int threads;
  bool encoding;
};

class AsyncFaultOracle : public ::testing::TestWithParam<AsyncFaultCase> {};

sim::FaultPlan async_plan_for(sim::FaultKind kind) {
  sim::FaultPlan plan;
  switch (kind) {
    case sim::FaultKind::Straggler:
      plan.add_straggler(1, sim::CollectiveType::Allreduce, 2, 1e-3);
      break;
    case sim::FaultKind::BitFlip:
      // Dense rounds pull and skip the alltoallv entirely, so the traffic
      // that is guaranteed to carry payload is the pull round's frontier
      // gather — every rank publishes its (non-empty) frontier bitmap
      // words.  A corrupted contribution is dropped to an empty span by the
      // receivers, which poisons the pulled claims and must go through
      // rollback-and-replay.
      plan.add_bitflip(1, sim::CollectiveType::Allgather, 0);
      break;
    case sim::FaultKind::Truncate:
      plan.add_truncate(0, sim::CollectiveType::Allgather, 0);
      break;
    case sim::FaultKind::RankFailure:
      plan.add_rank_failure(1, 2);  // fires at exchange round 2
      break;
  }
  return plan;
}

TEST_P(AsyncFaultOracle, RecoveredOutputBitMatchesFaultFree) {
  const AsyncFaultCase c = GetParam();
  SCOPED_TRACE(std::string("kind ") + sim::fault_kind_name(c.kind) +
               ", threads " + std::to_string(c.threads) + ", encoding " +
               (c.encoding ? "on" : "off"));
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 47;
  const sim::MeshShape mesh{2, 2};
  const Vertex root = graph::generate_rmat_range(cfg, 0, 1)[0].u;
  auto slices = [&](int rank, int nranks) {
    return rmat_slice(cfg, rank, nranks);
  };
  const sim::FaultPlan plan = async_plan_for(c.kind);
  auto faulty = run_async(cfg.num_vertices(), mesh, root, c.threads,
                          c.encoding, sim::ExchangeBackend::Direct, slices,
                          &plan);
  ASSERT_TRUE(faulty.ok) << faulty.error;
  // The plan must actually have fired, and the corrupting/fatal kinds must
  // have gone through detection + rollback-and-replay.
  EXPECT_GE(faulty.faults.injected(), 1u);
  if (c.kind != sim::FaultKind::Straggler) EXPECT_GE(faulty.faults.recovered, 1u);

  auto edges = graph::generate_rmat(cfg);
  expect_relaxed_oracle(cfg.num_vertices(), edges, root, faulty);
  auto clean = run_async(cfg.num_vertices(), mesh, root, c.threads,
                         c.encoding, sim::ExchangeBackend::Direct, slices);
  ASSERT_TRUE(clean.ok) << clean.error;
  EXPECT_EQ(faulty.parent, clean.parent);
  EXPECT_EQ(faulty.depth, clean.depth);
}

INSTANTIATE_TEST_SUITE_P(
    EveryFaultKind, AsyncFaultOracle,
    ::testing::Values(AsyncFaultCase{sim::FaultKind::Straggler, 2, true},
                      AsyncFaultCase{sim::FaultKind::BitFlip, 1, true},
                      AsyncFaultCase{sim::FaultKind::BitFlip, 4, false},
                      AsyncFaultCase{sim::FaultKind::Truncate, 2, true},
                      AsyncFaultCase{sim::FaultKind::Truncate, 2, false},
                      AsyncFaultCase{sim::FaultKind::RankFailure, 1, true},
                      AsyncFaultCase{sim::FaultKind::RankFailure, 4, true}));

// ------------------------------------------------ bit-determinism

// Relaxation is a monotone fetch-min fold, so the quiescent claims — parents
// included, not just depths — must be bit-identical across thread counts,
// encoding on/off and exchange backends.
TEST(AsyncDeterminism, OutputsBitIdenticalAcrossThreadsEncodingAndBackends) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 48;
  const sim::MeshShape mesh{2, 4};
  const Vertex root = graph::generate_rmat_range(cfg, 0, 1)[0].u;
  auto slices = [&](int rank, int nranks) {
    return rmat_slice(cfg, rank, nranks);
  };
  auto base = run_async(cfg.num_vertices(), mesh, root, 1, true,
                        sim::ExchangeBackend::Direct, slices);
  ASSERT_TRUE(base.ok) << base.error;
  for (int threads : {2, 4})
    for (bool encoding : {true, false})
      for (auto backend :
           {sim::ExchangeBackend::Direct, sim::ExchangeBackend::Butterfly,
            sim::ExchangeBackend::TwoDCA}) {
        SCOPED_TRACE(std::string("threads ") + std::to_string(threads) +
                     ", encoding " + (encoding ? "on" : "off") + ", " +
                     sim::exchange_backend_name(backend));
        auto got = run_async(cfg.num_vertices(), mesh, root, threads,
                             encoding, backend, slices);
        ASSERT_TRUE(got.ok) << got.error;
        EXPECT_EQ(got.parent, base.parent);
        EXPECT_EQ(got.depth, base.depth);
      }
}

// ------------------------------------------- engine-selection CLI

TEST(EngineCli, ParseAcceptsEverySpellingAndRejectsJunk) {
  bfs::EngineKind kind = bfs::EngineKind::OneFiveD;
  EXPECT_TRUE(bfs::parse_engine_kind("1d", &kind));
  EXPECT_EQ(kind, bfs::EngineKind::OneD);
  EXPECT_TRUE(bfs::parse_engine_kind("1.5d", &kind));
  EXPECT_EQ(kind, bfs::EngineKind::OneFiveD);
  EXPECT_TRUE(bfs::parse_engine_kind("async", &kind));
  EXPECT_EQ(kind, bfs::EngineKind::Async);
  for (const char* junk : {"", "2d", "ASYNC", "1.5D", "bfs", "asynchronous"}) {
    kind = bfs::EngineKind::OneD;
    EXPECT_FALSE(bfs::parse_engine_kind(junk, &kind)) << junk;
    EXPECT_EQ(kind, bfs::EngineKind::OneD) << "out modified on reject";
  }
  // Round trip: every kind's name parses back to itself.
  for (auto k : {bfs::EngineKind::OneD, bfs::EngineKind::OneFiveD,
                 bfs::EngineKind::Async}) {
    bfs::EngineKind back = bfs::EngineKind::OneD;
    EXPECT_TRUE(bfs::parse_engine_kind(bfs::engine_kind_name(k), &back));
    EXPECT_EQ(back, k);
  }
}

TEST(EngineCli, UnknownChoiceErrorNamesFlagValueAndChoices) {
  EXPECT_EQ(bfs::unknown_choice_error("--engine", "bogus",
                                      bfs::engine_kind_choices()),
            "--engine: unknown value 'bogus' (valid: 1d, 1.5d, async)");
  EXPECT_EQ(bfs::unknown_choice_error("--exchange", "ring",
                                      "direct, butterfly, 2dca"),
            "--exchange: unknown value 'ring' (valid: direct, butterfly, "
            "2dca)");
  EXPECT_EQ(std::string(bfs::engine_kind_choices()), "1d, 1.5d, async");
}

}  // namespace
}  // namespace sunbfs
