// Tests for the SW26010-Pro chip model: LDM, DMA, RMA, cost accounting,
// CG/chip synchronization and MPE execution.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "chip/chip.hpp"
#include "chip/ldcache.hpp"
#include "support/random.hpp"
#include "support/check.hpp"

namespace sunbfs::chip {
namespace {

TEST(Ldm, AllocRespectsAlignmentAndCapacity) {
  Ldm ldm(128);
  size_t a = ldm.alloc(10);
  size_t b = ldm.alloc(16, 16);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b % 16, 0u);
  EXPECT_GE(b, 10u);
  EXPECT_THROW(ldm.alloc(1024), CheckError);
  ldm.reset_alloc();
  EXPECT_EQ(ldm.alloc(64), 0u);
}

TEST(Ldm, TypedViews) {
  Ldm ldm(64);
  size_t off = ldm.alloc(4 * sizeof(uint32_t));
  uint32_t* p = ldm.as<uint32_t>(off);
  for (int i = 0; i < 4; ++i) p[i] = uint32_t(i * i);
  EXPECT_EQ(ldm.as<uint32_t>(off)[3], 9u);
}

TEST(Geometry, Presets) {
  Geometry full = Geometry::sw26010pro();
  EXPECT_EQ(full.total_cpes(), 384);
  EXPECT_EQ(full.ldm_bytes, 256u * 1024);
  Geometry tiny = Geometry::tiny();
  EXPECT_LT(tiny.total_cpes(), 32);
}

TEST(Chip, RunsKernelOnEveryCpe) {
  Chip chip(Geometry::tiny());
  std::vector<std::atomic<int>> hits(size_t(chip.geometry().total_cpes()));
  chip.run([&](CpeContext& cpe) {
    hits[size_t(cpe.cg() * cpe.geometry().cpes_per_cg + cpe.cpe())]
        .fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Chip, SingleCgRunUsesOnlyThatCg) {
  Chip chip(Geometry::tiny());
  std::atomic<int> count{0};
  std::atomic<int> max_cg{-1};
  chip.run(
      [&](CpeContext& cpe) {
        count.fetch_add(1);
        int prev = max_cg.load();
        while (prev < cpe.cg() && !max_cg.compare_exchange_weak(prev, cpe.cg()))
          ;
      },
      1);
  EXPECT_EQ(count.load(), chip.geometry().cpes_per_cg);
  EXPECT_EQ(max_cg.load(), 0);
}

TEST(Chip, DmaMovesDataAndChargesCycles) {
  Chip chip(Geometry::tiny());
  std::vector<uint64_t> mem(1024);
  std::iota(mem.begin(), mem.end(), 0);
  std::vector<uint64_t> out(1024, 0);
  auto report = chip.run(
      [&](CpeContext& cpe) {
        size_t off = cpe.ldm().alloc(512 * sizeof(uint64_t));
        uint64_t* buf = cpe.ldm().as<uint64_t>(off);
        size_t half = size_t(cpe.cpe() % 2) * 512;
        cpe.dma_get(buf, mem.data() + half, 512 * sizeof(uint64_t));
        if (cpe.cpe() < 2)
          cpe.dma_put(out.data() + half, buf, 512 * sizeof(uint64_t));
      },
      1);
  EXPECT_EQ(out, mem);
  EXPECT_GT(report.max_cycles, 0.0);
  EXPECT_EQ(report.totals.dma_ops,
            uint64_t(chip.geometry().cpes_per_cg) + 2);
}

TEST(Chip, RmaTransfersBetweenPeers) {
  Chip chip(Geometry::tiny());
  int n = chip.geometry().cpes_per_cg;
  auto report = chip.run(
      [&](CpeContext& cpe) {
        size_t off = cpe.ldm().alloc(sizeof(uint64_t) * 2);
        uint64_t* vals = cpe.ldm().as<uint64_t>(off);
        vals[0] = uint64_t(100 + cpe.cpe());
        cpe.sync_cg();
        // Each CPE reads its right neighbor's value.
        int peer = (cpe.cpe() + 1) % n;
        uint64_t got = cpe.rma_read<uint64_t>(peer, off);
        EXPECT_EQ(got, uint64_t(100 + peer));
        // And RMA-puts its own id into the left neighbor's slot 1.
        uint64_t mine = uint64_t(cpe.cpe());
        int left = (cpe.cpe() + n - 1) % n;
        cpe.rma_put(left, off + sizeof(uint64_t), &mine, sizeof(uint64_t));
        cpe.sync_cg();
        EXPECT_EQ(vals[1], uint64_t((cpe.cpe() + 1) % n));
      },
      1);
  EXPECT_EQ(report.totals.rma_ops, uint64_t(2 * n));
}

TEST(Chip, RmaIsCheaperThanGld) {
  // The architectural premise of CG-aware segmenting: reading a peer's LDM
  // via RMA must be much cheaper than a random main-memory load.
  Chip chip(Geometry::tiny());
  uint64_t mem_word = 42;
  double rma_cycles = 0, gld_cycles = 0;
  chip.run(
      [&](CpeContext& cpe) {
        if (cpe.cpe() != 0) return;
        size_t off = cpe.ldm().alloc(8);
        double c0 = cpe.cycles();
        (void)cpe.rma_read<uint64_t>(1, off);
        double c1 = cpe.cycles();
        (void)cpe.gld(mem_word);
        double c2 = cpe.cycles();
        rma_cycles = c1 - c0;
        gld_cycles = c2 - c1;
      },
      1);
  EXPECT_GT(gld_cycles, 4 * rma_cycles);
}

TEST(Chip, AtomicsAreExpensiveAndCorrect) {
  Chip chip(Geometry::tiny());
  std::atomic<uint64_t> counter{0};
  auto report = chip.run([&](CpeContext& cpe) { cpe.atomic_add(counter, 1); });
  EXPECT_EQ(counter.load(), uint64_t(chip.geometry().total_cpes()));
  EXPECT_EQ(report.totals.atomic_ops, uint64_t(chip.geometry().total_cpes()));
  EXPECT_GE(report.max_cycles, chip.cost().atomic_cycles);
}

TEST(Chip, SyncCgAlignsModeledClocks) {
  Chip chip(Geometry::tiny());
  chip.run(
      [&](CpeContext& cpe) {
        // CPE 0 does extra work; after the sync everyone's clock must be at
        // least that much.
        if (cpe.cpe() == 0) cpe.add_cycles(1e6);
        cpe.sync_cg();
        EXPECT_GE(cpe.cycles(), 1e6);
      },
      1);
}

TEST(Chip, SyncChipCrossesCgs) {
  Chip chip(Geometry::tiny());
  std::atomic<int> before{0};
  chip.run([&](CpeContext& cpe) {
    before.fetch_add(1);
    cpe.sync_chip();
    EXPECT_EQ(before.load(), chip.geometry().total_cpes());
  });
}

TEST(Chip, FlagHandshakeViaRmaPost) {
  Chip chip(Geometry::tiny());
  chip.run(
      [&](CpeContext& cpe) {
        size_t flag_off = cpe.ldm().alloc(sizeof(uint32_t), 4);
        size_t data_off = cpe.ldm().alloc(sizeof(uint64_t));
        cpe.ldm_atomic<uint32_t>(flag_off).store(0);
        cpe.sync_cg();
        if (cpe.cpe() == 0) {
          // Send a value to CPE 1, then raise its flag.
          uint64_t v = 777;
          cpe.rma_put(1, data_off, &v, sizeof(v));
          cpe.rma_post<uint32_t>(1, flag_off, 1);
        } else if (cpe.cpe() == 1) {
          auto& flag = cpe.ldm_atomic<uint32_t>(flag_off);
          cpe.wait([&] { return flag.load(std::memory_order_acquire) == 1; });
          EXPECT_EQ(*cpe.ldm().as<uint64_t>(data_off), 777u);
        }
        cpe.sync_cg();
      },
      1);
}

TEST(Chip, KernelExceptionPropagatesWithoutDeadlock) {
  Chip chip(Geometry::tiny());
  EXPECT_THROW(chip.run([&](CpeContext& cpe) {
    if (cpe.cg() == 0 && cpe.cpe() == 3) throw std::runtime_error("cpe died");
    cpe.sync_chip();  // peers must be released, not deadlock
  }),
               std::runtime_error);
}

TEST(Chip, MpeRunChargesMemoryCost) {
  Chip chip(Geometry::tiny());
  std::vector<uint64_t> data(1000, 5);
  uint64_t sum = 0;
  auto report = chip.run_mpe([&](MpeContext& mpe) {
    for (auto& d : data) sum += mpe.load(d);
  });
  EXPECT_EQ(sum, 5000u);
  EXPECT_DOUBLE_EQ(report.max_cycles, 1000 * chip.cost().mpe_mem_cycles);
  EXPECT_GT(report.modeled_seconds, 0.0);
}

TEST(Chip, LdmCapacityViolationSurfaces) {
  Chip chip(Geometry::tiny());
  EXPECT_THROW(
      chip.run([&](CpeContext& cpe) { cpe.ldm().alloc(1 << 24); }, 1),
      CheckError);
}

TEST(LdCache, TracksHitsByLine) {
  LdCache cache(1024, 256);  // 4 lines
  EXPECT_FALSE(cache.access(0));     // miss, installs line 0
  EXPECT_TRUE(cache.access(8));      // same line
  EXPECT_TRUE(cache.access(255));
  EXPECT_FALSE(cache.access(256));   // next line
  EXPECT_FALSE(cache.access(1024));  // conflicts with line 0 (direct-mapped)
  EXPECT_FALSE(cache.access(0));     // evicted
  EXPECT_EQ(cache.accesses(), 6u);
  EXPECT_EQ(cache.hits(), 2u);
  cache.flush();
  EXPECT_FALSE(cache.access(8));
}

TEST(LdCache, SequentialAccessHitsMostly) {
  LdCache cache(16 * 1024, 256);
  for (uint64_t a = 0; a < 64 * 1024; a += 8) cache.access(a);
  EXPECT_GT(cache.hit_rate(), 0.95);  // 1 miss per 32 accesses
}

TEST(Chip, CachedLoadHelpsSequentialNotRandomWorkingSet) {
  // SS3.3: "With LDCache enabled, the cache size is also not large enough to
  // hold the hot data given millions of vertices each node is responsible
  // for."  A working set far beyond the cache keeps missing; a small one
  // hits.  Modeled cycles must reflect it.
  Chip chip(Geometry::tiny());
  std::vector<uint64_t> big(1 << 20);  // 8 MB >> 8 KB cache
  std::vector<uint64_t> small(256);    // 2 KB << cache
  Xoshiro256StarStar rng(7);
  double big_cycles = 0, small_cycles = 0, gld_cycles = 0;
  chip.run(
      [&](CpeContext& cpe) {
        if (cpe.cpe() != 0) return;
        cpe.ldm().reset_alloc();
        cpe.enable_ldcache(8 * 1024);
        double c0 = cpe.cycles();
        for (int i = 0; i < 2000; ++i)
          (void)cpe.cached_load(big[rng.next_below(big.size())]);
        double c1 = cpe.cycles();
        for (int i = 0; i < 2000; ++i)
          (void)cpe.cached_load(small[rng.next_below(small.size())]);
        double c2 = cpe.cycles();
        for (int i = 0; i < 2000; ++i)
          (void)cpe.gld(big[rng.next_below(big.size())]);
        double c3 = cpe.cycles();
        big_cycles = c1 - c0;
        small_cycles = c2 - c1;
        gld_cycles = c3 - c2;
        EXPECT_GT(cpe.counters().cached_loads, 0u);
      },
      1);
  EXPECT_LT(small_cycles * 10, big_cycles);   // hot set: order faster
  EXPECT_GT(big_cycles, gld_cycles);          // thrashing cache <= raw GLD
}

TEST(Chip, LdCacheStealsLdmCapacity) {
  // "LDCache shares physical space with LDM": enabling it must reduce what
  // kernels can allocate, and over-reserving must be caught.
  Chip chip(Geometry::tiny());
  EXPECT_THROW(chip.run(
                   [&](CpeContext& cpe) {
                     cpe.ldm().reset_alloc();
                     cpe.enable_ldcache(cpe.ldm().capacity() - 64);
                     cpe.ldm().alloc(1024);  // no longer fits
                   },
                   1),
               CheckError);
}

TEST(Chip, CachedLoadFallsBackToGldWithoutCache) {
  Chip chip(Geometry::tiny());
  uint64_t word = 9;
  chip.run(
      [&](CpeContext& cpe) {
        if (cpe.cpe() != 0) return;
        double c0 = cpe.cycles();
        EXPECT_EQ(cpe.cached_load(word), 9u);  // no cache enabled
        EXPECT_DOUBLE_EQ(cpe.cycles() - c0, cpe.cost().gld_cycles);
        EXPECT_EQ(cpe.counters().cached_loads, 0u);
        EXPECT_EQ(cpe.counters().gld_ops, 1u);
      },
      1);
}

TEST(Chip, MpeStoreWritesThrough) {
  Chip chip(Geometry::tiny());
  uint64_t slot = 0;
  auto report = chip.run_mpe([&](MpeContext& mpe) {
    mpe.store(slot, uint64_t(42));
    mpe.add_cycles(5);
  });
  EXPECT_EQ(slot, 42u);
  EXPECT_DOUBLE_EQ(report.max_cycles, chip.cost().mpe_mem_cycles + 5);
}

TEST(Chip, KernelReportThroughputHelper) {
  KernelReport r;
  r.modeled_seconds = 2.0;
  EXPECT_DOUBLE_EQ(r.modeled_bytes_per_s(10), 5.0);
  KernelReport zero;
  EXPECT_DOUBLE_EQ(zero.modeled_bytes_per_s(10), 0.0);
}

TEST(CostModel, DmaFavorsLargeGrains) {
  CostModel cm;
  Geometry g = Geometry::sw26010pro();
  double per_byte_small = 0, per_byte_large = 0;
  double bpc = cm.dma_bytes_per_cycle_per_cpe(g.core_groups, g.cpes_per_cg);
  per_byte_small = (cm.dma_startup_cycles + 64.0 / bpc) / 64.0;
  per_byte_large = (cm.dma_startup_cycles + 4096.0 / bpc) / 4096.0;
  EXPECT_GT(per_byte_small, per_byte_large * 1.5);
}

}  // namespace
}  // namespace sunbfs::chip
