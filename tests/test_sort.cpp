// Tests for the sorting substrate: OCS-RMA bucket sort, baselines, PARADIS
// in-place radix sort and PSRS global sort.  Heavy use of parameterized
// property tests: permutations preserved, bucket/order invariants hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "sim/runtime.hpp"
#include "sort/bucket_baselines.hpp"
#include "sort/ocs_rma.hpp"
#include "sort/paradis.hpp"
#include "sort/psrs.hpp"
#include "sort/two_stage.hpp"
#include "support/random.hpp"

namespace sunbfs::sort {
namespace {

std::vector<uint64_t> random_keys(size_t n, uint64_t seed,
                                  uint64_t bound = ~0ull) {
  Xoshiro256StarStar rng(seed);
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = bound == ~0ull ? rng.next() : rng.next_below(bound);
  return v;
}

std::multiset<uint64_t> multiset_of(const std::vector<uint64_t>& v) {
  return {v.begin(), v.end()};
}

// ---------------------------------------------------------------- OCS-RMA

struct OcsCase {
  size_t n;
  uint32_t buckets;
  int n_cgs;
};

class OcsRmaTest : public ::testing::TestWithParam<OcsCase> {};

TEST_P(OcsRmaTest, BucketsArePermutationAndWellFormed) {
  const OcsCase c = GetParam();
  chip::Chip chip(chip::Geometry::tiny());
  auto input = random_keys(c.n, 1000 + c.n);
  std::vector<uint64_t> output(c.n, 0);
  auto bucket_of = [nb = c.buckets](uint64_t v) { return uint32_t(v % nb); };
  OcsParams params;
  params.buffer_bytes = 256;  // small LDM in tiny geometry
  auto res = ocs_rma_bucket_sort<uint64_t>(chip, input, std::span(output),
                                           c.buckets, bucket_of, c.n_cgs,
                                           params);
  ASSERT_EQ(res.offsets.size(), size_t(c.buckets) + 1);
  EXPECT_EQ(res.offsets.front(), 0u);
  EXPECT_EQ(res.offsets.back(), c.n);
  // Every element within its bucket range.
  for (uint32_t b = 0; b < c.buckets; ++b)
    for (uint64_t i = res.offsets[b]; i < res.offsets[b + 1]; ++i)
      EXPECT_EQ(bucket_of(output[i]), b) << "at " << i;
  // Multiset preserved.
  EXPECT_EQ(multiset_of(input), multiset_of(output));
  EXPECT_GT(res.report.modeled_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OcsRmaTest,
    ::testing::Values(OcsCase{0, 4, 1}, OcsCase{1, 4, 1}, OcsCase{100, 1, 1},
                      OcsCase{1000, 16, 1}, OcsCase{1000, 16, 2},
                      OcsCase{5000, 13, 2}, OcsCase{257, 16, 1},
                      OcsCase{4096, 7, 2}));

TEST(OcsRma, SingleCgUsesNoAtomics) {
  chip::Chip chip(chip::Geometry::tiny());
  auto input = random_keys(2000, 7);
  std::vector<uint64_t> out(input.size());
  OcsParams params;
  params.buffer_bytes = 256;
  auto res = ocs_rma_bucket_sort<uint64_t>(
      chip, input, std::span(out), 8,
      [](uint64_t v) { return uint32_t(v & 7); }, 1, params);
  // The paper's exclusiveness guarantee: zero atomic instructions on 1 CG.
  EXPECT_EQ(res.report.totals.atomic_ops, 0u);
}

TEST(OcsRma, MultiCgUsesAtomicsButFewerThanPerRecord) {
  chip::Chip chip(chip::Geometry::tiny());
  auto input = random_keys(4000, 8);
  std::vector<uint64_t> out(input.size());
  OcsParams params;
  params.buffer_bytes = 256;
  auto res = ocs_rma_bucket_sort<uint64_t>(
      chip, input, std::span(out), 8,
      [](uint64_t v) { return uint32_t(v & 7); }, 2, params);
  EXPECT_GT(res.report.totals.atomic_ops, 0u);
  // Batched reservation: far fewer atomics than records.
  EXPECT_LT(res.report.totals.atomic_ops, input.size() / 4);
}

TEST(OcsRma, ModeledThroughputBeatsBaselines) {
  // The Figure 14 ordering must hold even at test sizes:
  // OCS (1 CG) >> MPE, and OCS >> atomic-append.
  chip::Chip chip(chip::Geometry::tiny());
  auto input = random_keys(20000, 9);
  std::vector<uint64_t> out(input.size());
  auto bucket_of = [](uint64_t v) { return uint32_t(v & 15); };
  OcsParams params;
  params.buffer_bytes = 256;
  auto ocs = ocs_rma_bucket_sort<uint64_t>(chip, input, std::span(out), 16,
                                           bucket_of, 1, params);
  auto mpe = mpe_bucket_sort<uint64_t>(chip, input, std::span(out), 16,
                                       bucket_of);
  auto atomic = atomic_append_bucket_sort<uint64_t>(
      chip, input, std::span(out), 16, bucket_of, 1, params);
  uint64_t bytes = input.size() * sizeof(uint64_t);
  double t_ocs = ocs.report.modeled_bytes_per_s(bytes);
  double t_mpe = mpe.report.modeled_bytes_per_s(bytes);
  double t_atomic = atomic.report.modeled_bytes_per_s(bytes);
  EXPECT_GT(t_ocs, 20 * t_mpe);
  EXPECT_GT(t_ocs, 2 * t_atomic);
}

TEST(BucketBaselines, MpeAndAtomicMatchReference) {
  chip::Chip chip(chip::Geometry::tiny());
  auto input = random_keys(3000, 11);
  auto bucket_of = [](uint64_t v) { return uint32_t(v % 10); };
  std::vector<uint64_t> ref_out(input.size());
  auto ref_off = reference_bucket_sort<uint64_t>(input, std::span(ref_out), 10,
                                                 bucket_of);
  std::vector<uint64_t> mpe_out(input.size());
  auto mpe = mpe_bucket_sort<uint64_t>(chip, input, std::span(mpe_out), 10,
                                       bucket_of);
  EXPECT_EQ(mpe.offsets, ref_off);
  EXPECT_EQ(mpe_out, ref_out);  // MPE version is stable, like the reference
  std::vector<uint64_t> at_out(input.size());
  auto at = atomic_append_bucket_sort<uint64_t>(chip, input, std::span(at_out),
                                                10, bucket_of, 2);
  EXPECT_EQ(at.offsets, ref_off);
  EXPECT_EQ(multiset_of(at_out), multiset_of(ref_out));
  for (uint32_t b = 0; b < 10; ++b)
    for (uint64_t i = at.offsets[b]; i < at.offsets[b + 1]; ++i)
      EXPECT_EQ(bucket_of(at_out[i]), b);
}

// ---------------------------------------------------------------- PARADIS

class ParadisTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParadisTest, SortsRandomInput) {
  size_t n = GetParam();
  ThreadPool pool(3);
  auto v = random_keys(n, n + 1);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  paradis_sort(std::span(v), [](uint64_t x) { return x; }, pool);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParadisTest,
                         ::testing::Values(0, 1, 2, 63, 64, 65, 1000, 100000));

TEST(Paradis, SmallKeyRange) {
  auto v = random_keys(50000, 3, 4);  // keys in [0,4)
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  paradis_sort_u64(std::span(v));
  EXPECT_EQ(v, expected);
}

TEST(Paradis, AlreadySortedAndReversed) {
  std::vector<uint64_t> v(10000);
  std::iota(v.begin(), v.end(), 0);
  auto sorted = v;
  paradis_sort_u64(std::span(v));
  EXPECT_EQ(v, sorted);
  std::reverse(v.begin(), v.end());
  paradis_sort_u64(std::span(v));
  EXPECT_EQ(v, sorted);
}

TEST(Paradis, AllEqualKeys) {
  std::vector<uint64_t> v(5000, 42);
  paradis_sort_u64(std::span(v));
  EXPECT_TRUE(std::all_of(v.begin(), v.end(),
                          [](uint64_t x) { return x == 42; }));
}

TEST(Paradis, StructWithKeyFunction) {
  struct Edge {
    uint32_t src, dst;
  };
  Xoshiro256StarStar rng(5);
  std::vector<Edge> edges(10000);
  for (auto& e : edges) {
    e.src = uint32_t(rng.next_below(1000));
    e.dst = uint32_t(rng.next_below(1000));
  }
  paradis_sort(std::span(edges), [](const Edge& e) {
    return (uint64_t(e.src) << 32) | e.dst;
  });
  for (size_t i = 1; i < edges.size(); ++i) {
    uint64_t a = (uint64_t(edges[i - 1].src) << 32) | edges[i - 1].dst;
    uint64_t b = (uint64_t(edges[i].src) << 32) | edges[i].dst;
    ASSERT_LE(a, b);
  }
}

TEST(Paradis, FullWidthKeys) {
  auto v = random_keys(20000, 17);
  for (size_t i = 0; i < v.size(); i += 3) v[i] |= (uint64_t(1) << 63);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  paradis_sort_u64(std::span(v));
  EXPECT_EQ(v, expected);
}

// ------------------------------------------------------------------ PSRS

struct PsrsCase {
  int rows, cols;
  size_t per_rank;
};

class PsrsTest : public ::testing::TestWithParam<PsrsCase> {};

TEST_P(PsrsTest, GloballySortedAndPermutation) {
  auto c = GetParam();
  int p = c.rows * c.cols;
  std::vector<std::vector<uint64_t>> inputs(static_cast<size_t>(p));
  std::multiset<uint64_t> all;
  for (int r = 0; r < p; ++r) {
    inputs[size_t(r)] = random_keys(c.per_rank + size_t(r % 3), 100 + r);
    all.insert(inputs[size_t(r)].begin(), inputs[size_t(r)].end());
  }
  std::vector<std::vector<uint64_t>> outputs(static_cast<size_t>(p));
  sim::run_spmd(sim::MeshShape{c.rows, c.cols}, [&](sim::RankContext& ctx) {
    outputs[size_t(ctx.rank)] = psrs_sort(
        ctx.world, inputs[size_t(ctx.rank)], [](uint64_t v) { return v; });
  });
  // Each rank locally sorted; concatenation globally sorted; permutation.
  std::multiset<uint64_t> seen;
  uint64_t prev = 0;
  for (int r = 0; r < p; ++r) {
    for (uint64_t v : outputs[size_t(r)]) {
      ASSERT_GE(v, prev);
      prev = v;
      seen.insert(v);
    }
  }
  EXPECT_EQ(seen, all);
}

INSTANTIATE_TEST_SUITE_P(Meshes, PsrsTest,
                         ::testing::Values(PsrsCase{1, 1, 1000},
                                           PsrsCase{1, 2, 500},
                                           PsrsCase{2, 2, 2000},
                                           PsrsCase{2, 4, 1500},
                                           PsrsCase{1, 3, 0}));

TEST(Psrs, BalanceIsReasonableOnUniformKeys) {
  const int p = 4;
  std::vector<std::vector<uint64_t>> inputs(p);
  for (int r = 0; r < p; ++r) inputs[size_t(r)] = random_keys(10000, 7 + r);
  std::vector<size_t> sizes(p);
  sim::run_spmd(sim::MeshShape{2, 2}, [&](sim::RankContext& ctx) {
    auto out = psrs_sort(ctx.world, inputs[size_t(ctx.rank)],
                         [](uint64_t v) { return v; });
    sizes[size_t(ctx.rank)] = out.size();
  });
  size_t total = 0;
  for (size_t s : sizes) total += s;
  EXPECT_EQ(total, 40000u);
  for (size_t s : sizes) {
    EXPECT_GT(s, total / p / 2);
    EXPECT_LT(s, total / p * 2);
  }
}

TEST(Psrs, DuplicateHeavyKeys) {
  // Skewed key distribution (many duplicates) must still sort correctly.
  const int p = 4;
  std::vector<std::vector<uint64_t>> inputs(p);
  for (int r = 0; r < p; ++r) inputs[size_t(r)] = random_keys(5000, r + 1, 5);
  std::vector<std::vector<uint64_t>> outputs(p);
  sim::run_spmd(sim::MeshShape{1, 4}, [&](sim::RankContext& ctx) {
    outputs[size_t(ctx.rank)] = psrs_sort(ctx.world, inputs[size_t(ctx.rank)],
                                          [](uint64_t v) { return v; });
  });
  uint64_t prev = 0;
  size_t total = 0;
  for (auto& out : outputs)
    for (uint64_t v : out) {
      ASSERT_GE(v, prev);
      prev = v;
      ++total;
    }
  EXPECT_EQ(total, 20000u);
}


TEST(Psrs, AllEqualKeysDegenerateSplitters) {
  // Every sample equals every pivot: the partition must still conserve and
  // order the data (everything lands left of the pivots).
  const int p = 4;
  std::vector<std::vector<uint64_t>> inputs(p);
  for (auto& in : inputs) in.assign(3000, 42);
  size_t total = 0;
  sim::run_spmd(sim::MeshShape{2, 2}, [&](sim::RankContext& ctx) {
    auto out = psrs_sort(ctx.world, inputs[size_t(ctx.rank)],
                         [](uint64_t v) { return v; });
    uint64_t n = ctx.world.allreduce_sum(uint64_t(out.size()));
    if (ctx.rank == 0) total = n;
    for (uint64_t v : out) ASSERT_EQ(v, 42u);
  });
  EXPECT_EQ(total, 12000u);
}

TEST(OcsRma, MoreBucketsThanRecords) {
  chip::Chip chip(chip::Geometry::tiny());
  std::vector<uint64_t> in = {3, 7, 11};
  std::vector<uint64_t> out(in.size());
  OcsParams params;
  params.buffer_bytes = 64;
  auto res = ocs_rma_bucket_sort<uint64_t>(
      chip, in, std::span(out), 16, [](uint64_t v) { return uint32_t(v); },
      1, params);
  EXPECT_EQ(res.offsets.back(), 3u);
  EXPECT_EQ(res.offsets[3], 0u);
  EXPECT_EQ(res.offsets[4] - res.offsets[3], 1u);   // bucket 3
  EXPECT_EQ(res.offsets[8] - res.offsets[7], 1u);   // bucket 7
  EXPECT_EQ(res.offsets[12] - res.offsets[11], 1u); // bucket 11
}

TEST(TwoStage, SubrangeLargerThanDestination) {
  chip::Chip chip(chip::Geometry::tiny());
  std::vector<uint32_t> dest(50, 0);
  std::vector<UpdateMsg<uint32_t>> msgs;
  for (uint32_t i = 0; i < 50; ++i) msgs.push_back({i, i});
  auto res = two_stage_update<uint32_t>(
      chip, msgs, std::span(dest),
      [](uint32_t& slot, const uint32_t& v) {
        slot = v;
        return true;
      },
      4096, 1, OcsParams{.buffer_bytes = 128});
  EXPECT_EQ(res.applied, 50u);
  for (uint32_t i = 0; i < 50; ++i) ASSERT_EQ(dest[i], i);
}

// ------------------------------------------------------------- two-stage

TEST(TwoStage, AppliesFirstWinsUpdatesExclusively) {
  chip::Chip chip(chip::Geometry::tiny());
  const size_t n = 4096;
  std::vector<uint64_t> dest(n, ~0ull);
  Xoshiro256StarStar rng(13);
  std::vector<UpdateMsg<uint64_t>> msgs(20000);
  for (auto& m : msgs) {
    m.dst = rng.next_below(n);
    m.value = rng.next_below(1000);
  }
  // min-wins apply is order-insensitive, so the result is deterministic.
  auto res = two_stage_update<uint64_t>(
      chip, msgs, std::span(dest),
      [](uint64_t& slot, const uint64_t& v) {
        if (v < slot) {
          slot = v;
          return true;
        }
        return false;
      },
      256, 2, OcsParams{.buffer_bytes = 256});
  std::vector<uint64_t> expected(n, ~0ull);
  for (const auto& m : msgs) expected[m.dst] = std::min(expected[m.dst], m.value);
  EXPECT_EQ(dest, expected);
  EXPECT_GE(res.applied, n / 2);  // most slots got at least one winner
  EXPECT_GT(res.report.modeled_seconds, 0.0);
}

TEST(TwoStage, ApplyPassUsesNoAtomicsOrGst) {
  chip::Chip chip(chip::Geometry::tiny());
  std::vector<uint32_t> dest(1024, 0);
  std::vector<UpdateMsg<uint32_t>> msgs(5000);
  Xoshiro256StarStar rng(14);
  for (auto& m : msgs) {
    m.dst = rng.next_below(dest.size());
    m.value = 1;
  }
  auto res = two_stage_update<uint32_t>(
      chip, msgs, std::span(dest),
      [](uint32_t& slot, const uint32_t& v) {
        slot += v;  // exclusive ownership makes plain += safe
        return true;
      },
      128, 1, OcsParams{.buffer_bytes = 256});
  // Single CG: the whole pipeline is atomic-free; no uncached stores either.
  EXPECT_EQ(res.report.totals.atomic_ops, 0u);
  EXPECT_EQ(res.report.totals.gst_ops, 0u);
  uint64_t total = 0;
  for (uint32_t d : dest) total += d;
  EXPECT_EQ(total, msgs.size());
  EXPECT_EQ(res.applied, msgs.size());
}

TEST(TwoStage, EmptyInputsAreNoops) {
  chip::Chip chip(chip::Geometry::tiny());
  std::vector<uint64_t> dest(16, 7);
  std::vector<UpdateMsg<uint64_t>> none;
  auto res = two_stage_update<uint64_t>(
      chip, none, std::span(dest),
      [](uint64_t&, const uint64_t&) { return false; });
  EXPECT_EQ(res.applied, 0u);
  for (uint64_t d : dest) EXPECT_EQ(d, 7u);
}

}  // namespace
}  // namespace sunbfs::sort
