// Exchange-plan tests (ctest -L differential / -L faults): the staged
// exchange backends must be pure routing — bit-identical engine output —
// and the recovery machinery must see through every staged hop.  Four
// layers:
//
//   1. ExchangePlan unit tests: hop() composed over every stage delivers
//      every (holder, dst) pair for every backend, mesh shape and
//      communicator size (including non-power-of-two butterflies), stage
//      counts match the construction, and the degenerate shapes collapse
//      to direct.
//   2. Backend bit-identity: each engine (1D, 1.5D, MS-BFS,
//      delta-stepping) run under butterfly and 2D-CA — across encoding
//      on/off and thread counts — returns output bit-identical to the
//      direct-alltoallv baseline, which the suites in
//      test_differential.cpp already pin to the serial oracles.
//   3. Fault recovery through staged hops: corruption and rank failures
//      landing inside the butterfly's intermediate alltoallvs are
//      detected (xxhash64 block checksums per hop), rolled back and
//      replayed to the exact fault-free answer.
//   4. A seeded randomized full-pipeline sweep over exchange backends;
//      any failure prints one graph500_runner command line (including
//      --exchange) that replays it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "analytics/delta_stepping.hpp"
#include "bfs/bfs15d.hpp"
#include "bfs/bfs1d.hpp"
#include "bfs/messages.hpp"
#include "bfs/runner.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/part15d.hpp"
#include "partition/part1d.hpp"
#include "service/msbfs.hpp"
#include "sim/exchange.hpp"
#include "sim/exchange_channel.hpp"
#include "sim/fault.hpp"
#include "sim/runtime.hpp"
#include "support/random.hpp"

namespace sunbfs {
namespace {

using graph::Edge;
using graph::Graph500Config;
using graph::Vertex;

std::vector<Edge> slice_of(const Graph500Config& cfg, int rank, int nranks) {
  uint64_t m = cfg.num_edges();
  return graph::generate_rmat_range(cfg, m * uint64_t(rank) / uint64_t(nranks),
                                    m * uint64_t(rank + 1) / uint64_t(nranks));
}

Vertex pick_root(const Graph500Config& cfg) {
  return graph::generate_rmat_range(cfg, 0, 1)[0].u;
}

// ------------------------------------------------ plan routing unit tests

// Composing hop() over every stage must land every message on its
// destination, for every backend over representative meshes — including a
// communicator smaller than the mesh (sub-communicator exchanges always
// run nparts < ranks through the butterfly's fold path or degenerate).
TEST(ExchangePlan, HopCompositionDeliversEveryPair) {
  const sim::MeshShape meshes[] = {{1, 1}, {1, 4}, {4, 1}, {2, 2},
                                   {2, 3}, {3, 2}, {2, 4}, {4, 4}};
  const sim::ExchangeBackend backends[] = {sim::ExchangeBackend::Direct,
                                           sim::ExchangeBackend::Butterfly,
                                           sim::ExchangeBackend::TwoDCA};
  for (const auto mesh : meshes) {
    for (const auto backend : backends) {
      for (int nparts : {mesh.ranks(), std::max(1, mesh.ranks() - 1)}) {
        const auto plan = sim::ExchangePlan::build(backend, nparts, mesh);
        for (int dst = 0; dst < nparts; ++dst) {
          for (int holder = 0; holder < nparts; ++holder) {
            int h = holder;
            for (int s = 0; s < plan.stages(); ++s) h = plan.hop(s, h, dst);
            if (plan.stages() > 0) {
              ASSERT_EQ(h, dst)
                  << sim::exchange_backend_name(backend) << " on "
                  << mesh.rows << "x" << mesh.cols << " nparts " << nparts
                  << ": holder " << holder << " never reached " << dst;
            }
          }
        }
      }
    }
  }
}

TEST(ExchangePlan, StageCountsMatchConstruction) {
  const sim::MeshShape m44{4, 4};
  // Direct and single-rank plans are always flat.
  EXPECT_EQ(sim::ExchangePlan::build(sim::ExchangeBackend::Direct, 16, m44)
                .stages(),
            0);
  EXPECT_EQ(sim::ExchangePlan::build(sim::ExchangeBackend::Butterfly, 1, m44)
                .stages(),
            0);
  // Power-of-two butterfly: log2(P) bit stages.
  EXPECT_EQ(sim::ExchangePlan::build(sim::ExchangeBackend::Butterfly, 16, m44)
                .stages(),
            4);
  EXPECT_EQ(sim::ExchangePlan::build(sim::ExchangeBackend::Butterfly, 4, m44)
                .stages(),
            2);
  // Non-power-of-two: fold + log2(q) + unfold.
  EXPECT_EQ(sim::ExchangePlan::build(sim::ExchangeBackend::Butterfly, 6,
                                     sim::MeshShape{2, 3})
                .stages(),
            4);  // fold, bit1, bit2, unfold (q = 4)
  EXPECT_EQ(sim::ExchangePlan::build(sim::ExchangeBackend::Butterfly, 3,
                                     sim::MeshShape{3, 1})
                .stages(),
            3);  // fold, bit1, unfold (q = 2)
  // 2D-CA: row split + column delivery when there is something to split...
  EXPECT_EQ(sim::ExchangePlan::build(sim::ExchangeBackend::TwoDCA, 16, m44)
                .stages(),
            2);
  // ...and degenerate on flat meshes or sub-communicators.
  EXPECT_EQ(sim::ExchangePlan::build(sim::ExchangeBackend::TwoDCA, 4,
                                     sim::MeshShape{1, 4})
                .stages(),
            0);
  EXPECT_EQ(sim::ExchangePlan::build(sim::ExchangeBackend::TwoDCA, 8, m44)
                .stages(),
            0);
}

// With row-major rank numbering and a power-of-two column count, the
// butterfly's low-bit-first order means the early stages permute only the
// column: merging happens inside a supernode row before any message
// crosses the oversubscribed inter-supernode links (docs/COMM.md).
TEST(ExchangePlan, ButterflyEarlyStagesStayInsideTheRow) {
  const sim::MeshShape mesh{4, 4};
  const auto plan = sim::ExchangePlan::build(sim::ExchangeBackend::Butterfly,
                                             mesh.ranks(), mesh);
  ASSERT_EQ(plan.stages(), 4);
  const int col_stages = 2;  // log2(cols)
  for (int dst = 0; dst < mesh.ranks(); ++dst) {
    for (int holder = 0; holder < mesh.ranks(); ++holder) {
      int h = holder;
      for (int s = 0; s < col_stages; ++s) {
        const int next = plan.hop(s, h, dst);
        ASSERT_EQ(mesh.row_of(next), mesh.row_of(h))
            << "stage " << s << " crossed rows for holder " << holder
            << " dst " << dst;
        h = next;
      }
      // After the column stages the holder already sits in dst's column.
      ASSERT_EQ(mesh.col_of(h), mesh.col_of(dst));
    }
  }
}

// 2D-CA routes every message through exactly one rank: the row-mate in the
// destination's column.  At most one hop is inter-supernode.
TEST(ExchangePlan, TwoDCARoutesThroughTheRowMate) {
  const sim::MeshShape mesh{2, 4};
  const auto plan = sim::ExchangePlan::build(sim::ExchangeBackend::TwoDCA,
                                             mesh.ranks(), mesh);
  ASSERT_EQ(plan.stages(), 2);
  for (int dst = 0; dst < mesh.ranks(); ++dst) {
    for (int holder = 0; holder < mesh.ranks(); ++holder) {
      const int mid = plan.hop(0, holder, dst);
      EXPECT_EQ(mesh.row_of(mid), mesh.row_of(holder));
      EXPECT_EQ(mesh.col_of(mid), mesh.col_of(dst));
      EXPECT_EQ(plan.hop(1, mid, dst), dst);
    }
  }
}

// prime_staged must tolerate a butterfly tail rank (self >= q on a
// non-power-of-two communicator): hop(s, self, d) composes out of range at
// stages such a rank never holds messages at, and the priming loop used to
// index a staging lane past the pool — an out-of-bounds read that only
// crashed when nthreads == 1 kept the pool at exactly nparts lanes.
TEST(ExchangePlan, PrimeStagedToleratesFoldedTailRanks) {
  const sim::MeshShape mesh{3, 2};
  const auto plan = sim::ExchangePlan::build(sim::ExchangeBackend::Butterfly,
                                             mesh.ranks(), mesh);
  ASSERT_GT(plan.stages(), 0);
  for (int self = 0; self < mesh.ranks(); ++self) {
    sim::ExchangeChannel<bfs::CompactMsg> ch;
    ch.prime_staged(plan, self, /*nthreads=*/1, /*lane_cap=*/64,
                    /*volume_cap=*/256);
  }
}

// ------------------------------------------- engine backend bit-identity

std::vector<Vertex> run_1d(const Graph500Config& cfg, sim::MeshShape mesh,
                           Vertex root, int threads, bool encoding,
                           sim::ExchangeBackend backend) {
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<Vertex> global_parent;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto part = partition::build_1d(ctx, space, slice);
    bfs::Bfs1dOptions opts;
    opts.threads_per_rank = threads;
    opts.encoding.enabled = encoding;
    opts.exchange.backend = backend;
    auto res = bfs::bfs1d_run(ctx, part, root, opts);
    auto gathered = ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    if (ctx.rank == 0) global_parent = std::move(gathered);
  });
  return global_parent;
}

std::vector<Vertex> run_15d(const Graph500Config& cfg, sim::MeshShape mesh,
                            Vertex root, int threads, bool encoding,
                            sim::ExchangeBackend backend) {
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<Vertex> global_parent;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto deg = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_15d(ctx, space, slice, deg, {128, 32});
    bfs::Bfs15dOptions opts;
    opts.threads_per_rank = threads;
    opts.encoding.enabled = encoding;
    opts.exchange.backend = backend;
    auto res = bfs::bfs15d_run(ctx, part, root, opts);
    auto gathered = ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    if (ctx.rank == 0) global_parent = std::move(gathered);
  });
  return global_parent;
}

struct BackendCase {
  const char* engine;  // "1d" or "1.5d"
  uint64_t seed;
  int scale;
  int rows, cols;
};

class BackendBitIdentity : public ::testing::TestWithParam<BackendCase> {};

// Parent claims are order-independent reductions, so re-routing (and
// in-flight merging) must not change one output word: every staged backend
// at every (encoding, threads) combination equals the direct baseline,
// which test_differential.cpp pins against the serial reference.
TEST_P(BackendBitIdentity, ParentsEqualDirectBaseline) {
  const BackendCase c = GetParam();
  Graph500Config cfg;
  cfg.scale = c.scale;
  cfg.seed = c.seed;
  const Vertex root = pick_root(cfg);
  const sim::MeshShape mesh{c.rows, c.cols};
  const bool is_1d = std::string(c.engine) == "1d";
  auto run = [&](int threads, bool encoding, sim::ExchangeBackend backend) {
    return is_1d ? run_1d(cfg, mesh, root, threads, encoding, backend)
                 : run_15d(cfg, mesh, root, threads, encoding, backend);
  };
  const auto baseline = run(1, true, sim::ExchangeBackend::Direct);
  // Direct stays the oracle-pinned answer regardless of routing.
  auto levels =
      graph::levels_from_parents(cfg.num_vertices(), baseline, root);
  ASSERT_GT(levels[size_t(root)] + 1, 0);
  for (sim::ExchangeBackend backend :
       {sim::ExchangeBackend::Butterfly, sim::ExchangeBackend::TwoDCA}) {
    for (bool encoding : {true, false}) {
      for (int threads : {1, 4}) {
        SCOPED_TRACE(std::string(c.engine) + " " +
                     sim::exchange_backend_name(backend) + ", encoding " +
                     (encoding ? "on" : "off") + ", threads " +
                     std::to_string(threads));
        ASSERT_EQ(run(threads, encoding, backend), baseline);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededConfigs, BackendBitIdentity,
    ::testing::Values(BackendCase{"1d", 51, 10, 2, 2},
                      BackendCase{"1d", 52, 10, 2, 4},
                      BackendCase{"1d", 53, 9, 2, 3},  // non-pow2 butterfly
                      BackendCase{"1.5d", 54, 10, 2, 2},
                      BackendCase{"1.5d", 55, 10, 2, 4},
                      BackendCase{"1.5d", 56, 9, 3, 2}));

// MS-BFS: the batch engine's OR-mask visit messages merge across senders;
// exact parent equality with the direct run (which MsbfsOracle in
// test_differential.cpp pins to the canonical max-global-id rule).
TEST(BackendBitIdentityMsbfs, BatchParentsEqualDirectBaseline) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 61;
  const sim::MeshShape mesh{2, 2};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  const int width = 17;

  auto run = [&](sim::ExchangeBackend backend, bool encoding, int threads) {
    std::vector<std::vector<Vertex>> got;
    sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
      auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
      auto degrees = partition::compute_local_degrees(ctx, space, slice);
      auto part = partition::build_1d(ctx, space, slice);
      auto keys = bfs::pick_search_keys(ctx, space, degrees, width, cfg.seed);
      service::MsbfsOptions opts;
      opts.threads_per_rank = threads;
      opts.encoding.enabled = encoding;
      opts.exchange.backend = backend;
      auto batch = service::msbfs_run(ctx, part, keys, opts);
      const uint64_t local = space.count(ctx.rank);
      std::vector<std::vector<Vertex>> gathered(keys.size());
      for (size_t q = 0; q < keys.size(); ++q)
        gathered[q] = ctx.world.allgatherv(std::span<const Vertex>(
            batch.parent.data() + q * local, local));
      if (ctx.rank == 0) got = std::move(gathered);
    });
    return got;
  };

  const auto baseline = run(sim::ExchangeBackend::Direct, true, 1);
  ASSERT_EQ(baseline.size(), size_t(width));
  for (sim::ExchangeBackend backend :
       {sim::ExchangeBackend::Butterfly, sim::ExchangeBackend::TwoDCA}) {
    for (bool encoding : {true, false}) {
      for (int threads : {1, 4}) {
        SCOPED_TRACE(std::string(sim::exchange_backend_name(backend)) +
                     ", encoding " + (encoding ? "on" : "off") +
                     ", threads " + std::to_string(threads));
        ASSERT_EQ(run(backend, encoding, threads), baseline);
      }
    }
  }
}

// Delta-stepping: min-distance relaxations merge in flight; the settled
// distance vector is bit-identical across backends (distances are unique,
// unlike BFS trees, so equality is the full answer).
TEST(BackendBitIdentityDeltaStepping, DistancesEqualDirectBaseline) {
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 67;
  const sim::MeshShape mesh{2, 2};
  auto edges = graph::generate_rmat(cfg);
  const Vertex root = edges[5].u;

  auto run = [&](sim::ExchangeBackend backend, bool encoding) {
    std::vector<analytics::Dist> got;
    sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
      partition::VertexSpace space{cfg.num_vertices(), ctx.nranks()};
      auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
      auto degrees = partition::compute_local_degrees(ctx, space, slice);
      auto part = partition::build_15d(ctx, space, slice, degrees, {64, 16});
      analytics::DeltaSteppingOptions opts;
      opts.encoding.enabled = encoding;
      opts.exchange.backend = backend;
      auto dist = analytics::sssp15d_delta(ctx, part, root, opts);
      auto gathered =
          ctx.world.allgatherv(std::span<const analytics::Dist>(dist));
      if (ctx.rank == 0) got = std::move(gathered);
    });
    return got;
  };

  const auto baseline = run(sim::ExchangeBackend::Direct, true);
  ASSERT_EQ(baseline.size(), cfg.num_vertices());
  for (sim::ExchangeBackend backend :
       {sim::ExchangeBackend::Butterfly, sim::ExchangeBackend::TwoDCA}) {
    for (bool encoding : {true, false}) {
      SCOPED_TRACE(std::string(sim::exchange_backend_name(backend)) +
                   ", encoding " + (encoding ? "on" : "off"));
      ASSERT_EQ(run(backend, encoding), baseline);
    }
  }
}

// -------------------------------- fault recovery through staged hops

// Each staged hop is its own alltoallv on the wire: its blocks carry their
// own xxhash64 checksums and count against the fault plan's per-collective
// call indices.  Corruption landing in ANY butterfly stage — and a rank
// failure mid-search — must be detected, rolled back and replayed to the
// bit-exact fault-free answer.
struct StagedFaultCase {
  sim::FaultKind kind;
  uint64_t call_index;  // which Alltoallv the corruption lands in
  int threads;
  bool encoding;
};

class StagedFaultRecovery : public ::testing::TestWithParam<StagedFaultCase> {
};

TEST_P(StagedFaultRecovery, RecoveredParentsEqualFaultFree) {
  const StagedFaultCase c = GetParam();
  SCOPED_TRACE(std::string("kind ") + sim::fault_kind_name(c.kind) +
               ", call index " + std::to_string(c.call_index) + ", threads " +
               std::to_string(c.threads) + ", encoding " +
               (c.encoding ? "on" : "off"));
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 71;
  const sim::MeshShape mesh{2, 2};
  const Vertex root = pick_root(cfg);
  const auto backend = sim::ExchangeBackend::Butterfly;

  const auto expect = run_1d(cfg, mesh, root, c.threads, c.encoding, backend);

  sim::FaultPlan plan;
  switch (c.kind) {
    case sim::FaultKind::BitFlip:
      plan.add_bitflip(1, sim::CollectiveType::Alltoallv, c.call_index);
      break;
    case sim::FaultKind::Truncate:
      plan.add_truncate(0, sim::CollectiveType::Alltoallv, c.call_index);
      break;
    case sim::FaultKind::RankFailure:
      plan.add_rank_failure(1, 2);
      break;
    case sim::FaultKind::Straggler:
      plan.add_straggler(1, sim::CollectiveType::Alltoallv, c.call_index,
                         1e-3);
      break;
  }
  sim::SpmdOptions sopts;
  sopts.policy = sim::FaultPolicy::Recover;
  sopts.faults = &plan;

  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<Vertex> got;
  auto report = sim::run_spmd(sim::Topology(mesh), [&](sim::RankContext& ctx) {
    ctx.faults.armed = false;  // setup runs fault-free, as in the runner
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto part = partition::build_1d(ctx, space, slice);
    bfs::Bfs1dOptions opts;
    opts.threads_per_rank = c.threads;
    opts.encoding.enabled = c.encoding;
    opts.exchange.backend = backend;
    ctx.faults.armed = true;
    auto res = bfs::bfs1d_run(ctx, part, root, opts);
    ctx.faults.armed = false;
    auto gathered = ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    if (ctx.rank == 0) got = std::move(gathered);
  }, sopts);
  ASSERT_TRUE(report.ok()) << report.errors.front();

  const sim::FaultStats totals = report.fault_totals();
  EXPECT_GE(totals.injected(), 1u);
  if (c.kind != sim::FaultKind::Straggler) {
    EXPECT_GE(totals.recovered, 1u);
  }
  ASSERT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(
    ButterflyStages, StagedFaultRecovery,
    ::testing::Values(
        // Corruptions landing at increasing Alltoallv call indices hit
        // different stages of different levels' butterflies (2 staged
        // hops per level on a 2x2 mesh).
        StagedFaultCase{sim::FaultKind::BitFlip, 0, 1, true},
        StagedFaultCase{sim::FaultKind::BitFlip, 1, 1, true},
        StagedFaultCase{sim::FaultKind::BitFlip, 2, 4, true},
        StagedFaultCase{sim::FaultKind::BitFlip, 3, 1, false},
        StagedFaultCase{sim::FaultKind::Truncate, 1, 1, true},
        StagedFaultCase{sim::FaultKind::Truncate, 2, 4, false},
        StagedFaultCase{sim::FaultKind::RankFailure, 0, 1, true},
        StagedFaultCase{sim::FaultKind::RankFailure, 0, 4, false},
        StagedFaultCase{sim::FaultKind::Straggler, 1, 4, true}));

// ----------------------------------------- seeded randomized sweep

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? std::strtoull(s, nullptr, 10)
                                      : fallback;
}

// Full-pipeline draws over (engine, backend, mesh, threads, encoding,
// faults); every draw must validate, and a failing one prints the exact
// graph500_runner invocation — --exchange included — that replays it.
TEST(RandomizedExchangeSweep, SampledPipelinesValidateOrPrintRepro) {
  const uint64_t seed = env_u64("SUNBFS_SWEEP_SEED", 2026);
  const uint64_t iters = env_u64("SUNBFS_SWEEP_ITERS", 2);
  Xoshiro256StarStar rng(seed ^ 0xbf11);
  static const sim::MeshShape kMeshes[] = {{1, 2}, {2, 2}, {2, 4}, {4, 4}};
  static const int kThreads[] = {1, 2, 4};
  static const sim::ExchangeBackend kBackends[] = {
      sim::ExchangeBackend::Direct, sim::ExchangeBackend::Butterfly,
      sim::ExchangeBackend::TwoDCA};

  for (uint64_t it = 0; it < iters; ++it) {
    bfs::RunnerConfig cfg;
    cfg.graph.scale = int(9 + rng.next() % 3);
    cfg.graph.seed = 1 + rng.next() % 1000;
    cfg.engine = (rng.next() % 2 == 0) ? bfs::EngineKind::OneFiveD
                                       : bfs::EngineKind::OneD;
    cfg.num_roots = int(1 + rng.next() % 3);
    const int threads = kThreads[rng.next() % 3];
    cfg.bfs.threads_per_rank = threads;
    cfg.bfs1d.threads_per_rank = threads;
    const bool encoding = rng.next() % 2 == 0;
    cfg.bfs.encoding.enabled = encoding;
    cfg.bfs1d.encoding.enabled = encoding;
    const sim::ExchangeBackend backend = kBackends[1 + rng.next() % 2];
    cfg.bfs.exchange.backend = backend;
    cfg.bfs1d.exchange.backend = backend;
    const sim::MeshShape mesh = kMeshes[rng.next() % 4];
    const bool faulty = rng.next() % 2 == 0;
    const uint64_t fault_seed = 1 + rng.next() % 64;
    sim::FaultPlan plan;
    if (faulty) {
      plan = sim::FaultPlan::random(fault_seed, mesh.ranks(),
                                    /*stragglers=*/1, /*corruptions=*/2,
                                    /*failures=*/1);
      cfg.faults = &plan;
      cfg.fault_policy = sim::FaultPolicy::Recover;
    }
    cfg.validate = true;

    std::string repro =
        "graph500_runner --scale " + std::to_string(cfg.graph.scale) +
        " --seed " + std::to_string(cfg.graph.seed) + " --rows " +
        std::to_string(mesh.rows) + " --cols " + std::to_string(mesh.cols) +
        " --roots " + std::to_string(cfg.num_roots) + " --threads-per-rank " +
        std::to_string(threads) + " --engine " +
        (cfg.engine == bfs::EngineKind::OneD ? "1d" : "1.5d") +
        " --exchange " + sim::exchange_backend_name(backend);
    if (faulty)
      repro += " --faults " + std::to_string(fault_seed) +
               " --fault-policy recover";
    if (!encoding) repro += " --no-encoding";
    SCOPED_TRACE("repro: " + repro);

    sim::Topology topo(mesh);
    bfs::RunnerResult result;
    try {
      result = bfs::run_graph500(topo, cfg);
    } catch (const std::exception& e) {
      ADD_FAILURE() << "sweep draw " << it << " threw: " << e.what()
                    << "\n  repro: " << repro;
      continue;
    }
    EXPECT_TRUE(result.spmd.ok())
        << "sweep draw " << it << " SPMD errors\n  repro: " << repro;
    EXPECT_TRUE(result.all_valid)
        << "sweep draw " << it << " failed validation\n  repro: " << repro;
  }
}

}  // namespace
}  // namespace sunbfs
