// Chaos soak for the query service (ctest -L chaos): the full serving
// pipeline — workload generation, admission, batch formation, recoverable
// MS-BFS/SSSP execution, broker retries, shedding and hedging — replayed
// under randomized fault plans at three intensities.  Every run must hold
// the service's hard invariants:
//
//   1. Exactly-one-terminal-state: every issued query id appears exactly
//      once in the results, with a terminal status (Done / Expired /
//      Rejected / Failed) — faults may delay or fail queries, never lose or
//      duplicate them.
//   2. Bit-identical answers: a query completed under faults returns the
//      same traversed-edge count and level count as the fault-free replay
//      of the same workload (the engines' rollback-and-replay contract).
//   3. Allocation-free steady state: the resident staging pools stop
//      growing after the first executed batch, faults or not (BFS
//      workloads; the SSSP propagation engine is outside the pools).
//   4. Determinism: the same faulty configuration serves to bit-identical
//      reports, timings included.
//
// Any failure prints a single service_runner command that replays the
// offending configuration (--faults LEVEL --fault-seed SEED map to the
// same FaultPlan::random draws used here).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bfs/runner.hpp"
#include "service/broker.hpp"
#include "service/session.hpp"
#include "service/workload.hpp"
#include "sim/fault.hpp"
#include "sim/runtime.hpp"

namespace sunbfs::service {
namespace {

// Intensity levels, identical to service_runner's --faults LEVEL mapping so
// the printed repro command replays the same plan.
struct Intensity {
  int level;
  int stragglers, corruptions, failures;
};
constexpr Intensity kIntensities[] = {
    {1, 1, 1, 0},  // light: a straggler and one corruption
    {2, 1, 2, 1},  // medium: the graph500_runner acceptance mix
    {3, 2, 4, 2},  // heavy: a storm of all three kinds
};

ServiceConfig chaos_service() {
  ServiceConfig cfg;
  cfg.graph.scale = 9;
  cfg.graph.seed = 3;
  cfg.threads_per_rank = 2;
  cfg.root_pool = 16;
  return cfg;
}

WorkloadConfig chaos_workload() {
  WorkloadConfig wl;
  wl.seed = 17;
  wl.num_queries = 40;
  wl.rate_qps = 4000;
  return wl;
}

std::string repro_command(const ServiceConfig& cfg, const WorkloadConfig& wl,
                          int fault_level, uint64_t fault_seed) {
  std::string cmd =
      "service_runner --scale " + std::to_string(cfg.graph.scale) + " --seed " +
      std::to_string(cfg.graph.seed) + " --rows 2 --cols 2 "
      "--threads-per-rank " + std::to_string(cfg.threads_per_rank) +
      " --queries " + std::to_string(wl.num_queries) + " --rate " +
      std::to_string(int64_t(wl.rate_qps)) + " --wl-seed " +
      std::to_string(wl.seed) + " --root-pool " +
      std::to_string(cfg.root_pool);
  if (wl.deadline_s != kNoDeadline)
    cmd += " --deadline-ms " + std::to_string(wl.deadline_s * 1e3);
  if (cfg.mutation.enabled)
    cmd += " --mutations " + std::to_string(cfg.mutation.inserts_per_batch) +
           " --mutation-rate " +
           std::to_string(1.0 / double(cfg.mutation.every)) +
           " --mutation-seed " + std::to_string(cfg.mutation.seed);
  if (fault_level > 0)
    cmd += " --faults " + std::to_string(fault_level) + " --fault-seed " +
           std::to_string(fault_seed) + " --fault-policy recover";
  return cmd;
}

bool is_terminal(QueryStatus s) {
  return s == QueryStatus::Done || s == QueryStatus::Expired ||
         s == QueryStatus::Rejected || s == QueryStatus::Failed;
}

// Invariant 1: every issued id ends in exactly one terminal state, and the
// per-status counters partition the workload.
void check_terminal_accounting(const ServiceReport& report,
                               uint64_t num_queries) {
  std::vector<int> seen(num_queries, 0);
  for (const auto& r : report.results) {
    ASSERT_LT(r.id, num_queries);
    ASSERT_TRUE(is_terminal(r.status))
        << "query " << r.id << " non-terminal status";
    ++seen[size_t(r.id)];
  }
  for (uint64_t id = 0; id < num_queries; ++id)
    ASSERT_EQ(seen[size_t(id)], 1)
        << "query " << id << " has " << seen[size_t(id)]
        << " terminal states (want exactly 1)";
  EXPECT_EQ(report.completed + report.expired_total() + report.rejected +
                report.shed + report.failed,
            num_queries);
}

// Invariant 2: completed answers match the fault-free oracle bit-for-bit.
void check_answers_match(const ServiceReport& faulty,
                         const ServiceReport& clean) {
  std::map<uint64_t, std::pair<uint64_t, int>> oracle;
  for (const auto& r : clean.results)
    if (r.status == QueryStatus::Done)
      oracle[r.id] = {r.traversed_edges, r.levels};
  for (const auto& r : faulty.results) {
    if (r.status != QueryStatus::Done) continue;
    auto it = oracle.find(r.id);
    ASSERT_NE(it, oracle.end()) << "query " << r.id;
    EXPECT_EQ(r.traversed_edges, it->second.first)
        << "query " << r.id << " answer diverged under faults";
    EXPECT_EQ(r.levels, it->second.second)
        << "query " << r.id << " level count diverged under faults";
  }
}

void check_identical_reports(const ServiceReport& a, const ServiceReport& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].id, b.results[i].id) << "result " << i;
    ASSERT_EQ(a.results[i].status, b.results[i].status);
    ASSERT_EQ(a.results[i].done_s, b.results[i].done_s);
    ASSERT_EQ(a.results[i].latency_s, b.results[i].latency_s);
    ASSERT_EQ(a.results[i].traversed_edges, b.results[i].traversed_edges);
    ASSERT_EQ(a.results[i].retries, b.results[i].retries);
  }
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.retried, b.retried);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.shed, b.shed);
}

// The soak proper: three intensities x two plan seeds, all against the same
// fault-free oracle run.
TEST(ChaosSoak, RandomizedFaultPlansHoldServiceInvariants) {
  const ServiceConfig base = chaos_service();
  const WorkloadConfig wl = chaos_workload();
  sim::Topology topo(sim::MeshShape{2, 2});

  GraphSession clean_session(topo, base);
  ServiceReport clean = clean_session.serve(wl, BrokerConfig{});
  ASSERT_TRUE(clean.spmd.ok());
  ASSERT_EQ(clean.completed, wl.num_queries);
  check_terminal_accounting(clean, wl.num_queries);
  EXPECT_EQ(clean.staging_allocs_steady, 0u);

  uint64_t injected_total = 0;
  for (const Intensity& in : kIntensities) {
    for (uint64_t fault_seed : {11ull, 29ull}) {
      SCOPED_TRACE("repro: " + repro_command(base, wl, in.level, fault_seed));
      ServiceConfig cfg = base;
      cfg.faults =
          sim::FaultPlan::random(fault_seed, topo.mesh().ranks(),
                                 in.stragglers, in.corruptions, in.failures);
      GraphSession session(topo, cfg);
      ServiceReport report = session.serve(wl, BrokerConfig{});
      ASSERT_TRUE(report.spmd.ok());
      check_terminal_accounting(report, wl.num_queries);
      check_answers_match(report, clean);
      // Invariant 3: no steady-state staging growth even while replaying.
      EXPECT_EQ(report.staging_allocs_steady, 0u);
      injected_total += report.spmd.fault_totals().injected();
    }
  }
  // The soak must actually have exercised the unhappy paths.
  EXPECT_GT(injected_total, 0u);
}

// Invariant 4 on the heaviest intensity: chaos is replayable.
TEST(ChaosSoak, FaultyRunsAreDeterministic) {
  const Intensity in = kIntensities[2];
  ServiceConfig cfg = chaos_service();
  cfg.faults = sim::FaultPlan::random(11, 4, in.stragglers, in.corruptions,
                                      in.failures);
  sim::Topology topo(sim::MeshShape{2, 2});
  SCOPED_TRACE("repro: " + repro_command(cfg, chaos_workload(), in.level, 11));
  GraphSession session(topo, cfg);
  ServiceReport first = session.serve(chaos_workload(), BrokerConfig{});
  ServiceReport second = session.serve(chaos_workload(), BrokerConfig{});
  ASSERT_TRUE(first.spmd.ok());
  ASSERT_TRUE(second.spmd.ok());
  check_identical_reports(first, second);
}

// The asynchronous relaxed-frontier engine under the same chaos treatment:
// randomized fault plans (the graph500_runner --faults mix: one straggler,
// two corruptions, one hard rank failure) against the full pipeline, every
// root still validating against the host reference.  The async engine's
// recoverable surface is different from the level-synchronous engines' —
// round-indexed checkpoints, termination-credit restore — so the soak pins
// that rollback-and-replay is equally invisible there.
TEST(ChaosSoak, AsyncEngineSurvivesRandomFaultPlans) {
  sim::Topology topo(sim::MeshShape{2, 2});
  uint64_t injected_total = 0, recovered_total = 0;
  for (uint64_t fault_seed : {3ull, 13ull, 21ull}) {
    bfs::RunnerConfig cfg;
    cfg.graph.scale = 9;
    cfg.graph.seed = 5;
    cfg.engine = bfs::EngineKind::Async;
    cfg.num_roots = 2;
    cfg.bfsasync.threads_per_rank = 2;
    cfg.validate = true;
    sim::FaultPlan plan = sim::FaultPlan::random(
        fault_seed, topo.mesh().ranks(), /*stragglers=*/1, /*corruptions=*/2,
        /*failures=*/1);
    cfg.faults = &plan;
    cfg.fault_policy = sim::FaultPolicy::Recover;
    SCOPED_TRACE("repro: graph500_runner --scale 9 --seed 5 --rows 2 --cols 2"
                 " --roots 2 --threads-per-rank 2 --engine async --faults " +
                 std::to_string(fault_seed));
    bfs::RunnerResult result = bfs::run_graph500(topo, cfg);
    ASSERT_TRUE(result.spmd.ok())
        << result.spmd.errors.front();
    EXPECT_TRUE(result.all_valid);
    const sim::FaultStats totals = result.spmd.fault_totals();
    injected_total += totals.injected();
    recovered_total += totals.recovered;
  }
  // The soak must actually have exercised injection and rollback-and-replay.
  EXPECT_GT(injected_total, 0u);
  EXPECT_GT(recovered_total, 0u);
}

// Broker retry path end to end: with the in-engine retry budget at zero,
// every planned rank failure exhausts recovery, the batch fails, and the
// broker re-admits with backoff until the per-query budget runs out.
TEST(ChaosSoak, ExhaustedRecoveryFailsOverToBrokerRetries) {
  ServiceConfig cfg = chaos_service();
  cfg.faults = sim::FaultPlan::random(7, 4, 0, 0, /*failures=*/1);
  cfg.msbfs.recovery.max_retries = 0;  // any rollback exhausts the engine
  cfg.retry_budget = 1;
  WorkloadConfig wl = chaos_workload();
  wl.num_queries = 16;
  sim::Topology topo(sim::MeshShape{2, 2});
  SCOPED_TRACE("repro: " + repro_command(cfg, wl, 0, 7) +
               " (retry-budget 1, in-engine retries 0, 1 rank failure)");
  GraphSession session(topo, cfg);
  ServiceReport report = session.serve(wl, BrokerConfig{});
  ASSERT_TRUE(report.spmd.ok());
  check_terminal_accounting(report, wl.num_queries);

  // Rank failures fire in every execution, so every attempt fails: each
  // query is retried once (the budget) and then fails for good.
  EXPECT_EQ(report.failed, wl.num_queries);
  EXPECT_EQ(report.retried, wl.num_queries);
  EXPECT_GT(report.failed_batches, 0u);
  EXPECT_EQ(report.completed, 0u);
  for (const auto& r : report.results) {
    ASSERT_EQ(r.status, QueryStatus::Failed);
    EXPECT_EQ(r.retries, 1);
    EXPECT_NE(r.error.find("QueryFailed"), std::string::npos) << r.error;
  }
}

// Overload shedding keeps the p99 of admitted queries bounded: under a
// burst overload (every arrival lands before the first batch finishes) with
// a fault storm stretching batch service times, the breaker must trip on
// queue occupancy, shed priority-0 load as typed fast-failures, and leave
// the admitted queries with a strictly better completed-query p99 than the
// unshedded baseline that drains the whole queue.
TEST(ChaosSoak, SheddingBoundsTailLatencyUnderOverload) {
  ServiceConfig cfg = chaos_service();
  cfg.faults = sim::FaultPlan::random(11, 4, 1, 2, 1);
  WorkloadConfig wl = chaos_workload();
  wl.num_queries = 64;
  wl.rate_qps = 1e6;  // a burst: all arrivals land at once, queue-wait rules
  sim::Topology topo(sim::MeshShape{2, 2});
  GraphSession session(topo, cfg);

  BrokerConfig unshed;
  unshed.batch_width = 8;  // 8 batches deep: the tail is pure queueing delay
  ServiceReport baseline = session.serve(wl, unshed);
  ASSERT_TRUE(baseline.spmd.ok());
  ASSERT_EQ(baseline.shed, 0u);

  BrokerConfig shed = unshed;
  shed.shed.enabled = true;
  shed.shed.queue_highwater = 0.02;  // trips on queue pressure quickly
  shed.shed.min_samples = 4;
  ServiceReport report = session.serve(wl, shed);
  ASSERT_TRUE(report.spmd.ok());
  check_terminal_accounting(report, wl.num_queries);

  EXPECT_GT(report.shed, 0u);
  EXPECT_GT(report.breaker_transitions, 0u);
  for (const auto& r : report.results) {
    if (r.status != QueryStatus::Rejected) continue;
    EXPECT_NE(r.error.find("QueryShed"), std::string::npos) << r.error;
  }
  // The point of shedding: admitted queries keep a bounded tail.
  EXPECT_LT(report.latency_p99_s, baseline.latency_p99_s)
      << "shedding did not improve the admitted p99";
}

// ----------------------- mutation-interleaved storms (ctest -L mutation)

ServiceConfig mutating_chaos_service() {
  ServiceConfig cfg = chaos_service();
  cfg.mutation.enabled = true;
  cfg.mutation.every = 8;
  cfg.mutation.max_batches = 4;
  cfg.mutation.inserts_per_batch = 4;
  cfg.mutation.deletes_per_batch = 4;
  return cfg;
}

// Epoch-aware variant of check_answers_match: a completed query whose epoch
// equals the oracle run's must answer bit-identically; a query that moved to
// a different epoch may only have done so through a broker retry (the
// rollback path re-admits it after mutations advanced the graph).
void check_answers_match_by_epoch(const ServiceReport& faulty,
                                  const ServiceReport& clean) {
  std::map<uint64_t, const QueryResult*> oracle;
  for (const auto& r : clean.results)
    if (r.status == QueryStatus::Done) oracle[r.id] = &r;
  for (const auto& r : faulty.results) {
    if (r.status != QueryStatus::Done) continue;
    auto it = oracle.find(r.id);
    ASSERT_NE(it, oracle.end()) << "query " << r.id;
    const QueryResult& b = *it->second;
    if (r.epoch != b.epoch) {
      EXPECT_GT(r.retries, 0)
          << "query " << r.id << " changed epoch without a retry";
      continue;
    }
    EXPECT_EQ(r.traversed_edges, b.traversed_edges)
        << "query " << r.id << " answer diverged under faults";
    EXPECT_EQ(r.levels, b.levels)
        << "query " << r.id << " level count diverged under faults";
    EXPECT_EQ(r.distance, b.distance) << "query " << r.id;
    EXPECT_EQ(r.reachable, b.reachable) << "query " << r.id;
  }
}

// The soak with streaming mutations live: randomized storms interleave edge
// insert/delete batches with fault injections.  Terminal accounting, the
// allocation-free steady state, and epoch-consistent answers must all
// survive, and the run must actually have mutated (epoch advanced).
TEST(ChaosSoak, MutationStormHoldsServiceInvariants) {
  const ServiceConfig base = mutating_chaos_service();
  const WorkloadConfig wl = chaos_workload();
  sim::Topology topo(sim::MeshShape{2, 2});

  GraphSession clean_session(topo, base);
  ServiceReport clean = clean_session.serve(wl, BrokerConfig{});
  ASSERT_TRUE(clean.spmd.ok());
  check_terminal_accounting(clean, wl.num_queries);
  ASSERT_GT(clean.mutate.batches, 0u);
  EXPECT_EQ(clean.staging_allocs_steady, 0u);

  uint64_t injected_total = 0;
  for (const Intensity& in : kIntensities) {
    for (uint64_t fault_seed : {11ull, 29ull}) {
      SCOPED_TRACE("repro: " + repro_command(base, wl, in.level, fault_seed));
      ServiceConfig cfg = base;
      cfg.faults =
          sim::FaultPlan::random(fault_seed, topo.mesh().ranks(),
                                 in.stragglers, in.corruptions, in.failures);
      GraphSession session(topo, cfg);
      ServiceReport report = session.serve(wl, BrokerConfig{});
      ASSERT_TRUE(report.spmd.ok());
      check_terminal_accounting(report, wl.num_queries);
      check_answers_match_by_epoch(report, clean);
      EXPECT_EQ(report.mutate.batches, clean.mutate.batches)
          << "faults changed how many mutation batches applied";
      EXPECT_EQ(report.staging_allocs_steady, 0u);
      injected_total += report.spmd.fault_totals().injected();
    }
  }
  EXPECT_GT(injected_total, 0u);
}

// A mutation racing lease expiry: tiny oracle leases force constant artifact
// churn while mutation batches bump the epoch underneath.  Cache-served
// answers must stay bit-identical to the cache-off mutating run, with both
// the lease-expiry and the epoch-invalidation paths demonstrably exercised.
TEST(ChaosSoak, MutationRacesLeaseExpiryWithoutStaleAnswers) {
  ServiceConfig cached = mutating_chaos_service();
  cached.cache.enabled = true;
  cached.cache.tree_capacity = 8;
  cached.cache.landmarks = 8;
  cached.cache.tree_lease_s = 2e-4;   // expires between most probes
  cached.cache.sketch_lease_s = 2e-4;
  ServiceConfig plain = mutating_chaos_service();

  WorkloadConfig wl = chaos_workload();
  wl.distance_fraction = 0.3;
  wl.reachable_fraction = 0.15;
  wl.root_dist = RootDist::Zipfian;
  sim::Topology topo(sim::MeshShape{2, 2});
  SCOPED_TRACE("repro: " + repro_command(cached, wl, 0, 0) +
               " --cache --cache-capacity 8 --landmarks 8 --lease-ms 0.2"
               " --sketch-lease-ms 0.2 --mix-distance 0.3"
               " --mix-reachable 0.15 --root-dist zipfian");

  ServiceReport on = GraphSession(topo, cached).serve(wl, BrokerConfig{});
  ServiceReport off = GraphSession(topo, plain).serve(wl, BrokerConfig{});
  ASSERT_TRUE(on.spmd.ok());
  ASSERT_TRUE(off.spmd.ok());
  check_terminal_accounting(on, wl.num_queries);
  ASSERT_GT(on.mutate.batches, 0u);
  EXPECT_GT(on.cache.expired, 0u) << "leases never expired; race is vacuous";

  std::map<uint64_t, const QueryResult*> baseline;
  for (const auto& r : off.results) baseline[r.id] = &r;
  for (const auto& r : on.results) {
    auto it = baseline.find(r.id);
    ASSERT_NE(it, baseline.end()) << "query " << r.id;
    const QueryResult& b = *it->second;
    ASSERT_EQ(r.epoch, b.epoch) << "query " << r.id;
    EXPECT_EQ(r.status, b.status) << "query " << r.id;
    EXPECT_EQ(r.distance, b.distance)
        << "query " << r.id << (r.cache_hit ? " (cache hit)" : "");
    EXPECT_EQ(r.reachable, b.reachable) << "query " << r.id;
    EXPECT_EQ(r.traversed_edges, b.traversed_edges) << "query " << r.id;
    EXPECT_EQ(r.levels, b.levels) << "query " << r.id;
  }
}

// Rollback replaying a mutation from the log: planned rank failures force
// batch rollbacks after mutation epochs have applied.  The replicated log
// means replayed batches execute against exactly the graph their admission
// epoch named, so recovered answers still match the fault-free mutating
// oracle (epoch-aware) and the whole run replays bit-identically.
TEST(ChaosSoak, RollbackReplaysAcrossMutationEpochs) {
  ServiceConfig cfg = mutating_chaos_service();
  cfg.faults = sim::FaultPlan::random(7, 4, /*stragglers=*/0,
                                      /*corruptions=*/0, /*failures=*/2);
  const WorkloadConfig wl = chaos_workload();
  sim::Topology topo(sim::MeshShape{2, 2});
  SCOPED_TRACE("repro: " + repro_command(cfg, wl, 2, 7));

  GraphSession clean_session(topo, mutating_chaos_service());
  ServiceReport clean = clean_session.serve(wl, BrokerConfig{});
  ASSERT_TRUE(clean.spmd.ok());

  GraphSession session(topo, cfg);
  ServiceReport first = session.serve(wl, BrokerConfig{});
  ServiceReport second = session.serve(wl, BrokerConfig{});
  ASSERT_TRUE(first.spmd.ok());
  ASSERT_TRUE(second.spmd.ok());
  check_terminal_accounting(first, wl.num_queries);
  check_answers_match_by_epoch(first, clean);
  check_identical_reports(first, second);
  EXPECT_GT(first.mutate.batches, 0u);
  EXPECT_GT(first.spmd.fault_totals().recovered, 0u)
      << "no rollback happened; the replay path is vacuous";
  EXPECT_EQ(first.staging_allocs_steady, 0u);
}

// Hedged re-execution: a one-off straggler delay far past the service's
// normal batch time triggers a hedge whose replay (the straggler already
// fired) finishes sooner, shortening the makespan without changing answers.
TEST(ChaosSoak, HedgingCutsStragglerTailWithoutChangingAnswers) {
  ServiceConfig cfg = chaos_service();
  // One huge straggler on an Allreduce a few batches in (armed-call indices
  // count engine collectives only, so the hit lands mid-workload).
  cfg.faults.add_straggler(1, sim::CollectiveType::Allreduce, 40, 0.05);
  WorkloadConfig wl = chaos_workload();
  sim::Topology topo(sim::MeshShape{2, 2});
  BrokerConfig broker;
  broker.batch_width = 8;  // enough batches to warm the straggle quantile

  GraphSession plain_session(topo, cfg);
  ServiceReport plain = plain_session.serve(wl, broker);
  ASSERT_TRUE(plain.spmd.ok());

  ServiceConfig hedged_cfg = cfg;
  hedged_cfg.hedge.enabled = true;
  hedged_cfg.hedge.min_samples = 2;
  GraphSession hedged_session(topo, hedged_cfg);
  ServiceReport hedged = hedged_session.serve(wl, broker);
  ASSERT_TRUE(hedged.spmd.ok());
  check_terminal_accounting(hedged, wl.num_queries);
  check_answers_match(hedged, plain);

  EXPECT_GT(hedged.hedged_batches, 0u);
  EXPECT_LT(hedged.makespan_s, plain.makespan_s)
      << "the hedge never beat the straggler";
  for (const auto& r : hedged.results)
    if (r.hedged) EXPECT_EQ(r.status, QueryStatus::Done);
}

}  // namespace
}  // namespace sunbfs::service
