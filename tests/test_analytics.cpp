// Tests for the analytics built on the 1.5D partition (the paper's §8
// algorithm-neutrality claim): connected components, PageRank and SSSP all
// match serial references exactly (CC/SSSP) or within FP tolerance (PR).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "analytics/cc.hpp"
#include "analytics/delta_stepping.hpp"
#include "analytics/propagate.hpp"
#include "analytics/pagerank.hpp"
#include "analytics/sssp.hpp"
#include "analytics/sssp_runner.hpp"
#include "graph/validate.hpp"
#include "graph/csr.hpp"
#include "graph/rmat.hpp"
#include "sim/runtime.hpp"

namespace sunbfs::analytics {
namespace {

using graph::Edge;
using graph::Graph500Config;
using graph::Vertex;

std::vector<Edge> slice_of(const Graph500Config& cfg, int rank, int nranks) {
  uint64_t m = cfg.num_edges();
  return graph::generate_rmat_range(cfg, m * uint64_t(rank) / uint64_t(nranks),
                                    m * uint64_t(rank + 1) / uint64_t(nranks));
}

struct Built {
  partition::VertexSpace space;
  partition::Part15d part;
  std::vector<uint64_t> degrees;
};

Built build(sim::RankContext& ctx, const Graph500Config& cfg,
            partition::DegreeThresholds th) {
  Built b;
  b.space = partition::VertexSpace{cfg.num_vertices(), ctx.nranks()};
  auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
  b.degrees = partition::compute_local_degrees(ctx, b.space, slice);
  b.part = partition::build_15d(ctx, b.space, slice, b.degrees, th);
  return b;
}

struct MeshCase {
  int rows, cols;
};

class AnalyticsMeshes : public ::testing::TestWithParam<MeshCase> {};

TEST_P(AnalyticsMeshes, ConnectedComponentsMatchUnionFind) {
  auto mc = GetParam();
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 17;
  std::vector<Vertex> got;
  sim::run_spmd(sim::MeshShape{mc.rows, mc.cols}, [&](sim::RankContext& ctx) {
    auto b = build(ctx, cfg, {128, 32});
    auto labels = cc15d(ctx, b.part);
    auto gathered = ctx.world.allgatherv(std::span<const Vertex>(labels));
    if (ctx.rank == 0) got = std::move(gathered);
  });
  auto edges = graph::generate_rmat(cfg);
  auto ref = reference_cc(cfg.num_vertices(), edges);
  ASSERT_EQ(got.size(), ref.size());
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v)
    ASSERT_EQ(got[v], ref[v]) << "vertex " << v;
}

TEST_P(AnalyticsMeshes, PageRankMatchesReference) {
  auto mc = GetParam();
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 23;
  PageRankOptions opts;
  opts.max_iterations = 30;
  opts.tolerance = 0;  // fixed iteration count for exact comparability
  std::vector<double> got;
  sim::run_spmd(sim::MeshShape{mc.rows, mc.cols}, [&](sim::RankContext& ctx) {
    auto b = build(ctx, cfg, {64, 16});
    auto ranks = pagerank15d(ctx, b.part, b.degrees, opts);
    auto gathered = ctx.world.allgatherv(std::span<const double>(ranks));
    if (ctx.rank == 0) got = std::move(gathered);
  });
  auto edges = graph::generate_rmat(cfg);
  auto ref = reference_pagerank(cfg.num_vertices(), edges, opts);
  double sum = 0;
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v) {
    ASSERT_NEAR(got[v], ref[v], 1e-9) << "vertex " << v;
    sum += got[v];
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_P(AnalyticsMeshes, SsspMatchesDijkstra) {
  auto mc = GetParam();
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 29;
  auto edges = graph::generate_rmat(cfg);
  Vertex root = edges[5].u;
  std::vector<Dist> got;
  sim::run_spmd(sim::MeshShape{mc.rows, mc.cols}, [&](sim::RankContext& ctx) {
    auto b = build(ctx, cfg, {64, 16});
    auto dist = sssp15d(ctx, b.part, root);
    auto gathered = ctx.world.allgatherv(std::span<const Dist>(dist));
    if (ctx.rank == 0) got = std::move(gathered);
  });
  auto ref = reference_sssp(cfg.num_vertices(), edges, root);
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v)
    ASSERT_EQ(got[v], ref[v]) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(Meshes, AnalyticsMeshes,
                         ::testing::Values(MeshCase{1, 1}, MeshCase{2, 2},
                                           MeshCase{2, 3}));

TEST(EdgeWeight, SymmetricDeterministicBounded) {
  for (uint64_t s : {1ull, 42ull}) {
    for (Vertex u = 0; u < 50; ++u) {
      for (Vertex v = u; v < 50; ++v) {
        Dist w1 = edge_weight(u, v, s, 100);
        Dist w2 = edge_weight(v, u, s, 100);
        ASSERT_EQ(w1, w2);
        ASSERT_GE(w1, 1u);
        ASSERT_LE(w1, 100u);
      }
    }
  }
  EXPECT_NE(edge_weight(1, 2, 1), edge_weight(1, 3, 1));
}

TEST(Sssp, UnreachableVerticesStayInfinite) {
  Graph500Config cfg;
  cfg.scale = 9;
  auto edges = graph::generate_rmat(cfg);
  auto deg = graph::undirected_degrees(cfg.num_vertices(), edges);
  Vertex root = edges[0].u;
  std::vector<Dist> got;
  sim::run_spmd(sim::MeshShape{2, 2}, [&](sim::RankContext& ctx) {
    auto b = build(ctx, cfg, {64, 16});
    auto dist = sssp15d(ctx, b.part, root);
    auto gathered = ctx.world.allgatherv(std::span<const Dist>(dist));
    if (ctx.rank == 0) got = std::move(gathered);
  });
  bool any_inf = false;
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v) {
    if (deg[v] == 0 && Vertex(v) != root) {
      EXPECT_EQ(got[v], kInfDist);
      any_inf = true;
    }
  }
  EXPECT_TRUE(any_inf);
}

TEST(Cc, ComponentCountMatches) {
  Graph500Config cfg;
  cfg.scale = 11;
  cfg.seed = 3;
  std::vector<Vertex> got;
  sim::run_spmd(sim::MeshShape{1, 4}, [&](sim::RankContext& ctx) {
    auto b = build(ctx, cfg, {128, 32});
    auto labels = cc15d(ctx, b.part);
    auto gathered = ctx.world.allgatherv(std::span<const Vertex>(labels));
    if (ctx.rank == 0) got = std::move(gathered);
  });
  auto edges = graph::generate_rmat(cfg);
  auto ref = reference_cc(cfg.num_vertices(), edges);
  std::set<Vertex> got_comps(got.begin(), got.end());
  std::set<Vertex> ref_comps(ref.begin(), ref.end());
  EXPECT_EQ(got_comps.size(), ref_comps.size());
}


// ------------------------------------------------- propagation framework

// Custom program: every vertex learns the maximum vertex id in its
// component (the dual of cc15d's min-label program).
struct MaxLabelProgram {
  using Value = Vertex;
  Value identity() const { return -1; }
  Value combine(Value a, Value b) const { return std::max(a, b); }
  Value contribution(Value u_value, Vertex, Vertex) const { return u_value; }
  bool update(Value& state, const Value& gathered) const {
    if (gathered > state) {
      state = gathered;
      return true;
    }
    return false;
  }
};

TEST(Propagate, CustomMaxLabelProgramFindsComponentMax) {
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 41;
  std::vector<Vertex> got;
  sim::run_spmd(sim::MeshShape{2, 2}, [&](sim::RankContext& ctx) {
    auto b = build(ctx, cfg, {64, 16});
    PropagationEngine<MaxLabelProgram> engine(ctx, b.part, {});
    engine.initialize([](Vertex v) { return v; });
    auto res = engine.run();
    EXPECT_TRUE(res.converged);
    EXPECT_GT(res.rounds, 1);
    auto gathered = ctx.world.allgatherv(
        std::span<const Vertex>(engine.owned_values()));
    if (ctx.rank == 0) got = std::move(gathered);
  });
  // Reference: max id per union-find component.
  auto edges = graph::generate_rmat(cfg);
  auto ref_min = reference_cc(cfg.num_vertices(), edges);
  std::map<Vertex, Vertex> comp_max;
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v) {
    auto [it, ok] = comp_max.try_emplace(ref_min[v], Vertex(v));
    if (!ok) it->second = std::max(it->second, Vertex(v));
  }
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v)
    ASSERT_EQ(got[v], comp_max[ref_min[v]]) << "vertex " << v;
}

// Custom program with a non-idempotent gather: each vertex sums its
// neighbors' initial weights (one round = a sparse matrix-vector product).
struct NeighborSumProgram {
  using Value = uint64_t;
  Value identity() const { return 0; }
  Value combine(Value a, Value b) const { return a + b; }
  Value contribution(Value u_value, Vertex, Vertex) const { return u_value; }
  bool update(Value& state, const Value& gathered) const {
    state = gathered;
    return false;  // single-shot
  }
};

TEST(Propagate, NonIdempotentGatherCountsEveryArcOnce) {
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 43;
  std::vector<uint64_t> got;
  sim::run_spmd(sim::MeshShape{2, 3}, [&](sim::RankContext& ctx) {
    auto b = build(ctx, cfg, {64, 16});
    PropagationEngine<NeighborSumProgram> engine(ctx, b.part, {});
    engine.initialize([](Vertex v) { return uint64_t(v) + 1; });
    engine.step();
    auto gathered = ctx.world.allgatherv(
        std::span<const uint64_t>(engine.owned_values()));
    if (ctx.rank == 0) got = std::move(gathered);
  });
  // Reference SpMV: sum over the symmetric adjacency (self loops twice).
  auto edges = graph::generate_rmat(cfg);
  auto adj = graph::Csr::from_undirected(cfg.num_vertices(), edges);
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v) {
    uint64_t want = 0;
    for (Vertex u : adj.neighbors(v)) want += uint64_t(u) + 1;
    ASSERT_EQ(got[v], want) << "vertex " << v;
  }
}


// ------------------------------------------------------- SSSP validation

TEST(SsspValidate, AcceptsExactDistancesRejectsPerturbations) {
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 47;
  auto edges = graph::generate_rmat(cfg);
  Vertex root = edges[3].u;
  auto dist = reference_sssp(cfg.num_vertices(), edges, root);
  auto ok = validate_sssp(cfg.num_vertices(), edges, root, dist);
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_GT(ok.reached, 0u);
  EXPECT_GT(ok.edges_in_component, 0u);

  // Perturbations must be rejected.
  auto too_small = dist;
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v)
    if (Vertex(v) != root && too_small[v] < kInfDist && too_small[v] > 0) {
      too_small[v] -= 1;  // no longer has a tight predecessor or violates (3)
      break;
    }
  EXPECT_FALSE(validate_sssp(cfg.num_vertices(), edges, root, too_small).ok);

  auto wrong_root = dist;
  wrong_root[size_t(root)] = 1;
  EXPECT_FALSE(validate_sssp(cfg.num_vertices(), edges, root, wrong_root).ok);

  auto cut = dist;
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v)
    if (Vertex(v) != root && cut[v] < kInfDist) {
      cut[v] = kInfDist;  // reached vertex declared unreachable
      break;
    }
  EXPECT_FALSE(validate_sssp(cfg.num_vertices(), edges, root, cut).ok);
}

TEST(SsspRunner, EndToEndValidates) {
  SsspRunnerConfig cfg;
  cfg.graph.scale = 10;
  cfg.graph.seed = 51;
  cfg.thresholds = {128, 32};
  cfg.num_roots = 3;
  sim::Topology topo(sim::MeshShape{2, 2});
  auto result = run_graph500_sssp(topo, cfg);
  EXPECT_TRUE(result.all_valid);
  EXPECT_EQ(result.runs.size(), 3u);
  EXPECT_GT(result.harmonic_gteps, 0.0);
  for (const auto& r : result.runs) {
    EXPECT_TRUE(r.valid) << r.error;
    EXPECT_GT(r.traversed_edges, 0u);
  }
}

TEST(SsspRunner, BfsAndSsspAgreeOnReachability) {
  // Kernel 2 and kernel 3 must reach the same component from the same key.
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 53;
  auto edges = graph::generate_rmat(cfg);
  Vertex root = edges[9].u;
  auto bfs_parent = graph::reference_bfs(cfg.num_vertices(), edges, root);
  auto dist = reference_sssp(cfg.num_vertices(), edges, root);
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v)
    ASSERT_EQ(bfs_parent[v] != graph::kNoVertex, dist[v] < kInfDist);
}


TEST(PageRank, DampingChangesRanksButNotMass) {
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 67;
  auto run_with = [&](double damping) {
    PageRankOptions opts;
    opts.damping = damping;
    opts.max_iterations = 25;
    opts.tolerance = 0;
    std::vector<double> out;
    sim::run_spmd(sim::MeshShape{2, 2}, [&](sim::RankContext& ctx) {
      auto b = build(ctx, cfg, {64, 16});
      auto r = pagerank15d(ctx, b.part, b.degrees, opts);
      auto g = ctx.world.allgatherv(std::span<const double>(r));
      if (ctx.rank == 0) out = std::move(g);
    });
    return out;
  };
  auto low = run_with(0.5);
  auto high = run_with(0.95);
  double sum_low = 0, sum_high = 0, diff = 0;
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v) {
    sum_low += low[v];
    sum_high += high[v];
    diff += std::abs(low[v] - high[v]);
  }
  EXPECT_NEAR(sum_low, 1.0, 1e-6);   // probability mass conserved
  EXPECT_NEAR(sum_high, 1.0, 1e-6);
  EXPECT_GT(diff, 1e-3);             // damping actually matters
}

// --------------------------------------------------------- delta-stepping

class DeltaSteppingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaSteppingTest, MatchesDijkstraForAnyDelta) {
  const uint64_t delta = GetParam();
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 61;
  auto edges = graph::generate_rmat(cfg);
  Vertex root = edges[1].u;
  std::vector<Dist> got;
  DeltaSteppingStats stats;
  sim::run_spmd(sim::MeshShape{2, 2}, [&](sim::RankContext& ctx) {
    auto b = build(ctx, cfg, {64, 16});
    DeltaSteppingOptions opts;
    opts.delta = delta;
    DeltaSteppingStats st;
    auto dist = sssp15d_delta(ctx, b.part, root, opts, &st);
    auto gathered = ctx.world.allgatherv(std::span<const Dist>(dist));
    if (ctx.rank == 0) {
      got = std::move(gathered);
      stats = st;
    }
  });
  auto ref = reference_sssp(cfg.num_vertices(), edges, root);
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v)
    ASSERT_EQ(got[v], ref[v]) << "vertex " << v << " delta " << delta;
  EXPECT_GT(stats.buckets_processed, 0);
  EXPECT_GE(stats.light_rounds, stats.buckets_processed);
}

// delta = 1 degenerates toward Dijkstra; delta >= max path weight toward
// Bellman-Ford; both extremes and the middle must be exact.
INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSteppingTest,
                         ::testing::Values(1, 32, 128, 1024, 1u << 20));

TEST(DeltaStepping, AgreesWithPropagationEngineSssp) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 62;
  std::vector<Dist> a, b2;
  sim::run_spmd(sim::MeshShape{2, 3}, [&](sim::RankContext& ctx) {
    auto b = build(ctx, cfg, {128, 32});
    Vertex root = 5;
    auto d1 = sssp15d(ctx, b.part, root);
    auto d2 = sssp15d_delta(ctx, b.part, root);
    auto g1 = ctx.world.allgatherv(std::span<const Dist>(d1));
    auto g2 = ctx.world.allgatherv(std::span<const Dist>(d2));
    if (ctx.rank == 0) {
      a = std::move(g1);
      b2 = std::move(g2);
    }
  });
  EXPECT_EQ(a, b2);
}

TEST(DeltaStepping, BucketCountScalesInverselyWithDelta) {
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 63;
  Vertex root = graph::generate_rmat_range(cfg, 1, 2)[0].u;
  auto run_with = [&](Dist delta) {
    DeltaSteppingStats stats;
    sim::run_spmd(sim::MeshShape{1, 2}, [&](sim::RankContext& ctx) {
      auto b = build(ctx, cfg, {64, 16});
      DeltaSteppingOptions opts;
      opts.delta = delta;
      DeltaSteppingStats st;
      sssp15d_delta(ctx, b.part, root, opts, &st);
      if (ctx.rank == 0) stats = st;
    });
    return stats;
  };
  auto fine = run_with(16);
  auto coarse = run_with(4096);
  EXPECT_GT(fine.buckets_processed, coarse.buckets_processed);
}

}  // namespace
}  // namespace sunbfs::analytics
