// Streaming-mutation tests (ctest -L mutation): the differential
// mutation-oracle layer for the dynamic-graph subsystem (src/mutate,
// docs/SERVICE.md "Mutations & epochs").  Four layers:
//
//   1. MutationLog properties — deterministic replay, duplicate-edge dedup,
//      insert/delete disjointness, tombstone semantics (a delete removes
//      every duplicate copy; misses are counted), re-insert after delete,
//      and multiset agreement between the log's model and an independent
//      host replica.
//   2. CSR patch/compaction equivalence — a partition patched in place
//      batch by batch (and periodically compacted) equals, row by row as an
//      adjacency multiset, the CSR rebuilt from scratch on the log's
//      snapshot.
//   3. The differential repair oracle proper — across seeded (scale, mesh,
//      threads, encoding, exchange-backend) configurations, incremental
//      repair_bfs / repair_sssp after each batch must leave parents, depths
//      and distances BIT-IDENTICAL to a full recompute on the mutated
//      snapshot (serial canonical reference AND a fresh engine run), with
//      the repair exchanges allocation-free after the first batch.
//   4. Service-level epoch semantics — with mutations enabled, cache-on and
//      cache-off runs see identical per-query epochs and bit-identical
//      answers; mutation storms interleaved with fault plans keep the
//      exactly-one-terminal-state partition and replay bit-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "analytics/sssp.hpp"
#include "bfs/bfs15d.hpp"
#include "graph/csr.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "mutate/apply.hpp"
#include "mutate/log.hpp"
#include "mutate/repair.hpp"
#include "partition/classify.hpp"
#include "partition/part15d.hpp"
#include "partition/part1d.hpp"
#include "service/broker.hpp"
#include "service/msbfs.hpp"
#include "service/session.hpp"
#include "service/workload.hpp"
#include "sim/fault.hpp"
#include "sim/runtime.hpp"
#include "support/thread_pool.hpp"

namespace sunbfs {
namespace {

using graph::Edge;
using graph::Graph500Config;
using graph::Vertex;
using graph::kNoVertex;

std::vector<Edge> slice_of(const Graph500Config& cfg, int rank, int nranks) {
  uint64_t m = cfg.num_edges();
  return graph::generate_rmat_range(cfg, m * uint64_t(rank) / uint64_t(nranks),
                                    m * uint64_t(rank + 1) / uint64_t(nranks));
}

Vertex pick_root(const Graph500Config& cfg) {
  return graph::generate_rmat_range(cfg, 0, 1)[0].u;
}

uint64_t key_of(Vertex u, Vertex v) {
  uint64_t a = uint64_t(std::min(u, v)), b = uint64_t(std::max(u, v));
  return (a << 32) | b;
}

// ------------------------------------------------ MutationLog properties

TEST(MutationLog, BatchesReplayDeterministically) {
  Graph500Config cfg;
  cfg.scale = 6;
  cfg.seed = 5;
  auto base = graph::generate_rmat(cfg);
  mutate::MutationLogConfig lc;
  lc.seed = 12;
  mutate::MutationLog a(lc, cfg.num_vertices(), base);
  mutate::MutationLog b(lc, cfg.num_vertices(), base);
  for (int i = 0; i < 16; ++i) {
    const auto& ba = a.generate_next();
    const auto& bb = b.generate_next();
    ASSERT_EQ(ba.epoch, bb.epoch);
    ASSERT_EQ(ba.delete_misses, bb.delete_misses);
    ASSERT_EQ(ba.inserts.size(), bb.inserts.size());
    ASSERT_EQ(ba.deletes.size(), bb.deletes.size());
    for (size_t j = 0; j < ba.inserts.size(); ++j) {
      EXPECT_EQ(ba.inserts[j].u, bb.inserts[j].u);
      EXPECT_EQ(ba.inserts[j].v, bb.inserts[j].v);
    }
    for (size_t j = 0; j < ba.deletes.size(); ++j) {
      EXPECT_EQ(ba.deletes[j].u, bb.deletes[j].u);
      EXPECT_EQ(ba.deletes[j].v, bb.deletes[j].v);
    }
  }
  EXPECT_EQ(a.snapshot().size(), b.snapshot().size());
}

// An independent host replica of the edge-multiset model checks every batch:
// inserts hit only absent edges (dedup within the batch and against the
// model), deletes kill every duplicate copy or count a tombstone miss, a key
// deleted earlier can come back as a fresh insert, and the log's snapshot /
// live_arcs stay in multiset agreement throughout.
TEST(MutationLog, TombstonesDedupAndReinsertAgainstHostModel) {
  Graph500Config cfg;
  cfg.scale = 5;  // 32 vertices: a small key space forces re-insert collisions
  cfg.seed = 9;
  auto base = graph::generate_rmat(cfg);
  mutate::MutationLogConfig lc;
  lc.seed = 21;
  lc.inserts_per_batch = 6;
  lc.deletes_per_batch = 6;
  lc.phantom_fraction = 0.5;
  mutate::MutationLog log(lc, cfg.num_vertices(), base);

  std::map<uint64_t, uint64_t> model;  // key -> multiplicity
  for (const Edge& e : base) ++model[key_of(e.u, e.v)];
  std::set<uint64_t> deleted_ever;
  uint64_t reinserts = 0;

  for (int i = 0; i < 64; ++i) {
    const auto& b = log.generate_next();
    ASSERT_EQ(b.epoch, uint64_t(i + 1));
    std::set<uint64_t> in_batch;
    for (const Edge& e : b.inserts) {
      ASSERT_NE(e.u, e.v) << "self-loop insert";
      const uint64_t k = key_of(e.u, e.v);
      ASSERT_TRUE(in_batch.insert(k).second) << "duplicate insert in batch";
      ASSERT_EQ(model[k], 0u) << "insert hit a live edge";
      if (deleted_ever.count(k) > 0) ++reinserts;
      model[k] = 1;
    }
    uint64_t misses = 0;
    for (const Edge& e : b.deletes) {
      const uint64_t k = key_of(e.u, e.v);
      ASSERT_TRUE(in_batch.insert(k).second)
          << "delete overlaps an insert or another delete in the batch";
      auto it = model.find(k);
      if (it == model.end() || it->second == 0) {
        ++misses;  // tombstone no-op
      } else {
        model.erase(it);  // tombstone semantics: every copy dies
        deleted_ever.insert(k);
      }
    }
    EXPECT_EQ(b.delete_misses, misses) << "batch " << i;

    // Spot-check multiplicity on the batch's own endpoints.
    for (const Edge& e : b.inserts)
      EXPECT_EQ(log.multiplicity(e.u, e.v), 1u);
    for (const Edge& e : b.deletes) {
      auto it = model.find(key_of(e.u, e.v));
      EXPECT_EQ(log.multiplicity(e.u, e.v),
                it == model.end() ? 0u : it->second);
    }
  }

  // Full-multiset agreement: snapshot expands multiplicity.
  std::map<uint64_t, uint64_t> snap;
  uint64_t total = 0;
  for (const Edge& e : log.snapshot()) ++snap[key_of(e.u, e.v)], ++total;
  std::map<uint64_t, uint64_t> want(model.begin(), model.end());
  std::erase_if(want, [](const auto& kv) { return kv.second == 0; });
  EXPECT_EQ(snap, want);
  EXPECT_EQ(log.live_edges(), want.size());
  // Every edge instance stores two arcs (self loops twice too).
  EXPECT_EQ(log.live_arcs(), 2 * total);
  // The small key space must actually have produced delete-then-re-insert
  // cycles, or the idempotence property above was vacuous.
  EXPECT_GT(reinserts, 0u);
}

// ------------------------------- CSR patch / compaction equivalence

std::vector<std::vector<Vertex>> sorted_rows(const graph::Csr& csr) {
  std::vector<std::vector<Vertex>> out(csr.num_rows());
  for (uint64_t r = 0; r < csr.num_rows(); ++r) {
    auto nb = csr.neighbors(r);
    out[r].assign(nb.begin(), nb.end());
    std::sort(out[r].begin(), out[r].end());
  }
  return out;
}

// Patch a single-rank 1D partition batch by batch; after every batch (and
// after explicit compactions) the live adjacency must equal — per row, as a
// multiset — the CSR rebuilt from scratch on the log's snapshot, and the
// synced degree slice must match.
TEST(ApplyCsr, PatchedAdjacencyEqualsRebuiltSnapshot) {
  Graph500Config cfg;
  cfg.scale = 7;
  cfg.seed = 4;
  const uint64_t nv = cfg.num_vertices();
  auto base = graph::generate_rmat(cfg);

  partition::Part1d part{partition::VertexSpace{nv, 1},
                         graph::Csr::from_undirected(nv, base)};
  std::vector<uint64_t> degrees = graph::undirected_degrees(nv, base);

  mutate::MutationLogConfig lc;
  lc.seed = 31;
  lc.inserts_per_batch = 8;
  lc.deletes_per_batch = 8;
  mutate::MutationLog log(lc, nv, base);
  mutate::ApplyStats total;

  for (int i = 0; i < 12; ++i) {
    const auto& b = log.generate_next();
    total.merge(mutate::apply_batch_1d(0, part, b, &degrees));

    auto rebuilt = graph::Csr::from_undirected(nv, log.snapshot());
    ASSERT_EQ(part.adj.num_arcs(), rebuilt.num_arcs()) << "batch " << i;
    ASSERT_EQ(part.adj.num_arcs(), log.live_arcs()) << "batch " << i;
    ASSERT_EQ(sorted_rows(part.adj), sorted_rows(rebuilt)) << "batch " << i;
    for (uint64_t r = 0; r < nv; ++r)
      ASSERT_EQ(degrees[r], part.adj.degree(r)) << "degree desync at " << r;

    if (i % 4 == 3) {
      // Compaction must be invisible to the live adjacency.
      const uint64_t arcs = part.adj.num_arcs();
      part.adj.compact();
      EXPECT_EQ(part.adj.num_arcs(), arcs);
      EXPECT_GE(part.adj.slack_arcs(), 0u);
      ASSERT_EQ(sorted_rows(part.adj), sorted_rows(rebuilt))
          << "compaction changed the adjacency at batch " << i;
    }
  }
  EXPECT_GT(total.inserted_arcs, 0u);
  EXPECT_GT(total.deleted_arcs, 0u);
}

// The 1.5D patch path, checked behaviorally: a 1.5D partition patched in
// place (frozen classification, all six subgraph CSRs) must serve the exact
// mutated graph — BFS depths and SSSP distances from the real engines equal
// the serial references on the log's snapshot.
TEST(Apply15d, PatchedPartitionServesExactBfsAndSssp) {
  Graph500Config cfg;
  cfg.scale = 9;
  cfg.seed = 77;
  const uint64_t nv = cfg.num_vertices();
  const sim::MeshShape mesh{2, 2};
  partition::VertexSpace space{nv, mesh.ranks()};
  const Vertex root = pick_root(cfg);
  const int nbatches = 3;

  mutate::MutationLogConfig lc;
  lc.seed = 41;
  lc.inserts_per_batch = 8;
  lc.deletes_per_batch = 8;

  std::vector<Vertex> parent;
  std::vector<analytics::Dist> dist;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto deg = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_15d(ctx, space, slice, deg, {128, 32});

    auto base = graph::generate_rmat(cfg);
    mutate::MutationLog log(lc, nv, base);
    for (int i = 0; i < nbatches; ++i)
      mutate::apply_batch_15d(ctx.mesh, ctx.rank, part, log.generate_next());

    bfs::Bfs15dOptions bopts;
    bopts.threads_per_rank = 2;
    auto res = bfs::bfs15d_run(ctx, part, root, bopts);
    auto gp = ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    auto d = analytics::sssp15d(ctx, part, root);
    auto gd = ctx.world.allgatherv(std::span<const analytics::Dist>(d));
    if (ctx.rank == 0) {
      parent = std::move(gp);
      dist = std::move(gd);
    }
  });

  auto base = graph::generate_rmat(cfg);
  mutate::MutationLog log(lc, nv, base);
  for (int i = 0; i < nbatches; ++i) log.generate_next();
  auto snapshot = log.snapshot();

  auto vres = graph::validate_bfs(nv, snapshot, root, parent);
  ASSERT_TRUE(vres.ok) << vres.error;
  auto ref = graph::reference_bfs(nv, snapshot, root);
  auto ref_levels = graph::levels_from_parents(nv, ref, root);
  auto got_levels = graph::levels_from_parents(nv, parent, root);
  for (uint64_t v = 0; v < nv; ++v)
    ASSERT_EQ(got_levels[v], ref_levels[v]) << "depth mismatch at " << v;

  auto ref_dist = analytics::reference_sssp(nv, snapshot, root);
  ASSERT_EQ(dist.size(), ref_dist.size());
  for (uint64_t v = 0; v < nv; ++v)
    ASSERT_EQ(dist[v], ref_dist[v]) << "distance mismatch at " << v;
}

// -------------------------------- the differential repair oracle proper

// Serial re-derivation of the canonical max-global-id parent rule (the
// engines' determinism contract — see service/msbfs.hpp).
std::vector<Vertex> canonical_parents(
    uint64_t nv, const std::vector<std::vector<Vertex>>& adj,
    std::span<const int64_t> levels, Vertex root) {
  std::vector<Vertex> parent(nv, kNoVertex);
  parent[size_t(root)] = root;
  for (uint64_t v = 0; v < nv; ++v) {
    if (levels[v] <= 0) continue;
    Vertex best = kNoVertex;
    for (Vertex u : adj[v])
      if (levels[size_t(u)] == levels[v] - 1 && u > best) best = u;
    parent[v] = best;
  }
  return parent;
}

struct RepairCase {
  uint64_t seed;
  int scale;
  int rows, cols;
  int threads;
  bool encoding;
  sim::ExchangeBackend backend;
  int batches;
};

class RepairOracle : public ::testing::TestWithParam<RepairCase> {};

// One seeded configuration of the acceptance criterion: apply each mutation
// batch to the resident 1D partition, incrementally repair the BFS tree and
// the SSSP distances, and require bit-identity with (a) the serial canonical
// recompute on the mutated snapshot and (b) a fresh engine run over the
// patched partition — at every intermediate epoch, not just the last.
TEST_P(RepairOracle, RepairBitMatchesFullRecompute) {
  const RepairCase c = GetParam();
  SCOPED_TRACE("seed " + std::to_string(c.seed) + " scale " +
               std::to_string(c.scale) + " mesh " + std::to_string(c.rows) +
               "x" + std::to_string(c.cols) + " threads " +
               std::to_string(c.threads) + " encoding " +
               (c.encoding ? "on" : "off") + " backend " +
               sim::exchange_backend_name(c.backend));
  Graph500Config cfg;
  cfg.scale = c.scale;
  cfg.seed = c.seed;
  const uint64_t nv = cfg.num_vertices();
  const sim::MeshShape mesh{c.rows, c.cols};
  partition::VertexSpace space{nv, mesh.ranks()};
  const Vertex root = pick_root(cfg);

  mutate::MutationLogConfig lc;
  lc.seed = c.seed ^ 0xbeef;
  lc.inserts_per_batch = 8;
  lc.deletes_per_batch = 8;

  const analytics::SsspOptions wopts;  // default weight stream
  auto base_edges = graph::generate_rmat(cfg);
  auto dist0 = analytics::reference_sssp(nv, base_edges, root, wopts);

  // Per-epoch gathered state, captured on rank 0.
  std::vector<std::vector<Vertex>> parents(size_t(c.batches));
  std::vector<std::vector<int32_t>> depths(size_t(c.batches));
  std::vector<std::vector<analytics::Dist>> dists(size_t(c.batches));
  std::vector<Vertex> fresh_parent;  // engine recompute at the last epoch
  uint64_t degree_mismatches = 0, steady_allocs = 0;
  mutate::RepairStats stats_total;

  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_1d(ctx, space, slice);
    const uint64_t local = space.count(ctx.rank);

    service::MsbfsOptions mopts;
    mopts.threads_per_rank = c.threads;
    mopts.encoding.enabled = c.encoding;
    mopts.exchange.backend = c.backend;
    mopts.record_depths = true;
    const Vertex roots[1] = {root};
    auto res = service::msbfs_run(ctx, part, roots, mopts);
    std::vector<Vertex> parent = std::move(res.parent);
    std::vector<int32_t> depth = std::move(res.depth);
    std::vector<analytics::Dist> dist(
        dist0.begin() + long(space.begin(ctx.rank)),
        dist0.begin() + long(space.end(ctx.rank)));

    auto base = graph::generate_rmat(cfg);
    mutate::MutationLog log(lc, nv, base);
    ThreadPool pool(size_t(c.threads));
    mutate::RepairChannels rchan;
    const uint64_t headroom =
        2 * uint64_t(c.batches) * uint64_t(lc.inserts_per_batch);
    mutate::RepairOptions ropts;
    ropts.pool = &pool;
    ropts.channels = &rchan;
    ropts.encoding.enabled = c.encoding;
    ropts.exchange.backend = c.backend;
    rchan.prime(ctx, size_t(c.threads), part.adj.num_arcs() + headroom,
                ropts.encoding, ropts.exchange);

    uint64_t allocs_after_first = 0;
    mutate::RepairStats stats;
    for (int b = 0; b < c.batches; ++b) {
      const auto& mb = log.generate_next();
      mutate::apply_batch_1d(ctx.rank, part, mb, &degrees);
      stats.merge(mutate::repair_bfs(ctx, part, mb, root,
                                     std::span<Vertex>(parent),
                                     std::span<int32_t>(depth), ropts));
      stats.merge(mutate::repair_sssp(ctx, part, mb, root,
                                      std::span<analytics::Dist>(dist), wopts,
                                      ropts));
      if (b == 0) allocs_after_first = rchan.allocs();
      auto gp = ctx.world.allgatherv(std::span<const Vertex>(parent));
      auto gdep = ctx.world.allgatherv(std::span<const int32_t>(depth));
      auto gd = ctx.world.allgatherv(std::span<const analytics::Dist>(dist));
      if (ctx.rank == 0) {
        parents[size_t(b)] = std::move(gp);
        depths[size_t(b)] = std::move(gdep);
        dists[size_t(b)] = std::move(gd);
      }
    }

    // Degree slice stayed in sync with the patched adjacency.
    uint64_t mismatches = 0;
    for (uint64_t r = 0; r < local; ++r)
      if (degrees[r] != part.adj.degree(r)) ++mismatches;
    mismatches = ctx.world.allreduce_sum(mismatches);
    const uint64_t growth =
        ctx.world.allreduce_sum(rchan.allocs() - allocs_after_first);
    stats.invalidated = ctx.world.allreduce_sum(stats.invalidated);
    stats.relaxations = ctx.world.allreduce_sum(stats.relaxations);

    // Fresh engine recompute over the patched partition at the last epoch.
    auto fres = service::msbfs_run(ctx, part, roots, mopts);
    auto gfp = ctx.world.allgatherv(std::span<const Vertex>(fres.parent));
    if (ctx.rank == 0) {
      degree_mismatches = mismatches;
      steady_allocs = growth;
      fresh_parent = std::move(gfp);
      stats_total = stats;
    }
  });

  EXPECT_EQ(degree_mismatches, 0u);
  // Alloc-free steady state: the primed repair channels stop growing after
  // the first batch, on every rank.
  EXPECT_EQ(steady_allocs, 0u);

  // Host references at every epoch, from a host log replica.
  mutate::MutationLog log(lc, nv, base_edges);
  for (int b = 0; b < c.batches; ++b) {
    const auto& mb = log.generate_next();
    ASSERT_GT(mb.inserts.size() + mb.deletes.size(), 0u);
    auto snapshot = log.snapshot();
    std::vector<std::vector<Vertex>> adj(nv);
    for (const Edge& e : snapshot) {
      if (e.u == e.v) continue;
      adj[size_t(e.u)].push_back(e.v);
      adj[size_t(e.v)].push_back(e.u);
    }
    auto ref = graph::reference_bfs(nv, snapshot, root);
    auto levels = graph::levels_from_parents(nv, ref, root);
    auto want = canonical_parents(nv, adj, levels, root);
    const auto& gp = parents[size_t(b)];
    const auto& gdep = depths[size_t(b)];
    ASSERT_EQ(gp.size(), nv);
    for (uint64_t v = 0; v < nv; ++v) {
      ASSERT_EQ(gp[v], want[v])
          << "epoch " << (b + 1) << " parent mismatch at vertex " << v;
      ASSERT_EQ(int64_t(gdep[v]), levels[v])
          << "epoch " << (b + 1) << " depth mismatch at vertex " << v;
    }
    auto ref_dist = analytics::reference_sssp(nv, snapshot, root, wopts);
    const auto& gd = dists[size_t(b)];
    for (uint64_t v = 0; v < nv; ++v)
      ASSERT_EQ(gd[v], ref_dist[v])
          << "epoch " << (b + 1) << " distance mismatch at vertex " << v;
  }

  // The in-system cross-check: the repaired tree IS the fresh engine run.
  EXPECT_EQ(parents[size_t(c.batches - 1)], fresh_parent);
  // The suite is non-vacuous: mutations actually moved repair work.
  EXPECT_GT(stats_total.relaxations + stats_total.invalidated, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeededConfigs, RepairOracle,
    ::testing::Values(
        // scale x mesh x threads x encoding x backend (>= 12 configs).
        RepairCase{61, 9, 1, 2, 1, true, sim::ExchangeBackend::Direct, 2},
        RepairCase{62, 9, 2, 2, 1, true, sim::ExchangeBackend::Direct, 3},
        RepairCase{63, 10, 2, 2, 2, true, sim::ExchangeBackend::Direct, 2},
        RepairCase{64, 10, 2, 2, 4, false, sim::ExchangeBackend::Direct, 2},
        RepairCase{65, 10, 2, 4, 2, true, sim::ExchangeBackend::Butterfly, 2},
        RepairCase{66, 9, 2, 2, 1, true, sim::ExchangeBackend::Butterfly, 3},
        RepairCase{67, 10, 4, 1, 2, false, sim::ExchangeBackend::Butterfly, 2},
        RepairCase{68, 10, 2, 2, 2, true, sim::ExchangeBackend::TwoDCA, 2},
        RepairCase{69, 10, 2, 3, 1, true, sim::ExchangeBackend::TwoDCA, 2},
        RepairCase{70, 9, 1, 4, 4, false, sim::ExchangeBackend::Direct, 3},
        RepairCase{71, 11, 2, 2, 2, true, sim::ExchangeBackend::Direct, 2},
        RepairCase{72, 10, 3, 2, 2, false, sim::ExchangeBackend::TwoDCA, 2},
        RepairCase{73, 9, 2, 2, 4, true, sim::ExchangeBackend::Butterfly, 4},
        RepairCase{74, 10, 1, 1, 1, false, sim::ExchangeBackend::Direct, 3}));

// ------------------------------------- service-level epoch semantics

service::ServiceConfig mutating_service(bool cache) {
  service::ServiceConfig cfg;
  cfg.graph.scale = 9;
  cfg.graph.seed = 3;
  cfg.threads_per_rank = 2;
  cfg.root_pool = 16;
  cfg.mutation.enabled = true;
  cfg.mutation.every = 8;
  cfg.mutation.max_batches = 6;
  cfg.mutation.inserts_per_batch = 4;
  cfg.mutation.deletes_per_batch = 4;
  if (cache) {
    cfg.cache.enabled = true;
    cfg.cache.tree_capacity = 8;
    cfg.cache.landmarks = 8;
    cfg.cache.tree_lease_s = 10.0;
    cfg.cache.sketch_lease_s = 10.0;
  }
  return cfg;
}

service::WorkloadConfig mutating_workload(uint64_t seed, uint64_t n) {
  service::WorkloadConfig wl;
  wl.seed = seed;
  wl.num_queries = n;
  wl.rate_qps = 5000;
  wl.distance_fraction = 0.3;
  wl.reachable_fraction = 0.15;
  wl.root_dist = service::RootDist::Zipfian;
  return wl;
}

// The epoch read-consistency acceptance: mutation triggers are id-driven, so
// cache-on and cache-off runs must serve every query at the SAME epoch and
// return bit-identical answers — even though their virtual clocks differ.
TEST(MutationEpochs, CacheOnAndOffServeIdenticalEpochsAndAnswers) {
  const sim::Topology topo(sim::MeshShape{2, 2});
  const service::WorkloadConfig wl = mutating_workload(81, 64);
  service::ServiceReport on =
      service::GraphSession(topo, mutating_service(true))
          .serve(wl, service::BrokerConfig{});
  service::ServiceReport off =
      service::GraphSession(topo, mutating_service(false))
          .serve(wl, service::BrokerConfig{});
  ASSERT_TRUE(on.spmd.ok());
  ASSERT_TRUE(off.spmd.ok());
  EXPECT_EQ(on.completed, wl.num_queries);
  EXPECT_EQ(off.completed, wl.num_queries);
  EXPECT_GT(on.cache.hits, 0u) << "cache never hit; differential is vacuous";
  EXPECT_EQ(on.mutate.batches, 6u);
  EXPECT_EQ(off.mutate.batches, 6u);
  EXPECT_EQ(on.mutate.epoch, 6u);
  EXPECT_GT(on.mutate.inserted_arcs, 0u);
  EXPECT_EQ(on.staging_allocs_steady, 0u);
  EXPECT_EQ(off.staging_allocs_steady, 0u);
  // The cached session repairs its resident landmark trees in place.
  EXPECT_GT(on.mutate.sketch_repairs, 0u);
  EXPECT_EQ(off.mutate.sketch_repairs, 0u);

  std::map<uint64_t, const service::QueryResult*> baseline;
  for (const auto& r : off.results) baseline[r.id] = &r;
  for (const auto& r : on.results) {
    auto it = baseline.find(r.id);
    ASSERT_NE(it, baseline.end()) << "query " << r.id;
    const service::QueryResult& b = *it->second;
    // Id-driven triggers: both runs, and the analytic formula, agree on the
    // admission epoch of every query.
    EXPECT_EQ(r.epoch, b.epoch) << "query " << r.id;
    EXPECT_EQ(r.epoch, std::min<uint64_t>(6, r.id / 8)) << "query " << r.id;
    EXPECT_EQ(r.status, b.status) << "query " << r.id;
    EXPECT_EQ(r.distance, b.distance)
        << "query " << r.id << (r.cache_hit ? " (cache hit)" : "");
    EXPECT_EQ(r.reachable, b.reachable) << "query " << r.id;
    EXPECT_EQ(r.traversed_edges, b.traversed_edges) << "query " << r.id;
    EXPECT_EQ(r.levels, b.levels) << "query " << r.id;
  }
}

// A mutating, cached, faulty session must still replay bit-identically.
TEST(MutationEpochs, MutatingChaosReplaysBitIdentically) {
  service::ServiceConfig cfg = mutating_service(true);
  cfg.faults = sim::FaultPlan::random(19, 4, 1, 2, 1);
  const sim::Topology topo(sim::MeshShape{2, 2});
  service::GraphSession session(topo, cfg);
  const service::WorkloadConfig wl = mutating_workload(82, 48);
  service::ServiceReport a = session.serve(wl, service::BrokerConfig{});
  service::ServiceReport b = session.serve(wl, service::BrokerConfig{});
  ASSERT_TRUE(a.spmd.ok());
  ASSERT_TRUE(b.spmd.ok());
  EXPECT_GT(a.mutate.batches, 0u);
  EXPECT_GT(a.spmd.fault_totals().injected(), 0u);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    const auto& x = a.results[i];
    const auto& y = b.results[i];
    ASSERT_EQ(x.id, y.id) << "result " << i;
    ASSERT_EQ(x.status, y.status);
    ASSERT_EQ(x.epoch, y.epoch);
    ASSERT_EQ(x.distance, y.distance);
    ASSERT_EQ(x.reachable, y.reachable);
    ASSERT_EQ(x.traversed_edges, y.traversed_edges);
    ASSERT_EQ(x.done_s, y.done_s);
    ASSERT_EQ(x.retries, y.retries);
  }
}

// Mutation storms interleaved with fault injections keep the service's hard
// invariants: every query ends in exactly one terminal state, queries that
// executed at the same epoch as the fault-free run return bit-identical
// answers, and a query whose epoch moved did so only because a broker retry
// legitimately re-ran it against a newer graph.
TEST(MutationEpochs, ChaosStormKeepsTerminalPartitionAndEpochConsistency) {
  const sim::Topology topo(sim::MeshShape{2, 2});
  const service::WorkloadConfig wl = mutating_workload(83, 48);
  service::ServiceConfig clean_cfg = mutating_service(false);
  service::ServiceReport clean =
      service::GraphSession(topo, clean_cfg).serve(wl, service::BrokerConfig{});
  ASSERT_TRUE(clean.spmd.ok());

  uint64_t injected = 0;
  for (uint64_t fault_seed : {11ull, 29ull}) {
    SCOPED_TRACE("fault seed " + std::to_string(fault_seed));
    service::ServiceConfig cfg = clean_cfg;
    cfg.faults = sim::FaultPlan::random(fault_seed, topo.mesh().ranks(),
                                        /*stragglers=*/2, /*corruptions=*/4,
                                        /*failures=*/2);
    service::ServiceReport report =
        service::GraphSession(topo, cfg).serve(wl, service::BrokerConfig{});
    ASSERT_TRUE(report.spmd.ok());
    injected += report.spmd.fault_totals().injected();
    EXPECT_GT(report.mutate.batches, 0u);
    EXPECT_EQ(report.staging_allocs_steady, 0u);

    // Exactly-one-terminal-state.
    std::vector<int> seen(wl.num_queries, 0);
    for (const auto& r : report.results) {
      ASSERT_LT(r.id, wl.num_queries);
      ++seen[size_t(r.id)];
    }
    for (uint64_t id = 0; id < wl.num_queries; ++id)
      ASSERT_EQ(seen[size_t(id)], 1) << "query " << id;
    EXPECT_EQ(report.completed + report.expired_total() + report.rejected +
                  report.shed + report.failed,
              wl.num_queries);

    // Epoch-aware answer comparison against the fault-free oracle.
    std::map<uint64_t, const service::QueryResult*> oracle;
    for (const auto& r : clean.results)
      if (r.status == service::QueryStatus::Done) oracle[r.id] = &r;
    for (const auto& r : report.results) {
      if (r.status != service::QueryStatus::Done) continue;
      auto it = oracle.find(r.id);
      ASSERT_NE(it, oracle.end()) << "query " << r.id;
      const service::QueryResult& b = *it->second;
      if (r.epoch != b.epoch) {
        // Only a broker retry may carry a query across an epoch boundary.
        EXPECT_GT(r.retries, 0) << "query " << r.id
                                << " changed epoch without a retry";
        continue;
      }
      EXPECT_EQ(r.distance, b.distance) << "query " << r.id;
      EXPECT_EQ(r.reachable, b.reachable) << "query " << r.id;
      EXPECT_EQ(r.traversed_edges, b.traversed_edges) << "query " << r.id;
      EXPECT_EQ(r.levels, b.levels) << "query " << r.id;
    }
  }
  EXPECT_GT(injected, 0u);
}

}  // namespace
}  // namespace sunbfs
