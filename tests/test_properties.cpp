// Property-based and randomized-sweep tests: invariants that must hold for
// arbitrary seeds, shapes and option combinations.  These complement the
// per-module unit tests with breadth.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "bfs/bfs15d.hpp"
#include "bfs/runner.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/part15d.hpp"
#include "sim/runtime.hpp"
#include "sort/ocs_rma.hpp"
#include "sort/paradis.hpp"
#include "support/random.hpp"

namespace sunbfs {
namespace {

using graph::Edge;
using graph::Graph500Config;
using graph::Vertex;
using graph::kNoVertex;

// ------------------------------------------------------------ BFS sweeps

struct SweepCase {
  uint64_t seed;
  int scale;
  int rows, cols;
  uint64_t e_th, h_th;
  bool sub_iter;
  bool forwarding;
};

class BfsSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BfsSweep, EveryConfigurationValidates) {
  const SweepCase c = GetParam();
  Graph500Config cfg;
  cfg.scale = c.scale;
  cfg.seed = c.seed;
  sim::MeshShape mesh{c.rows, c.cols};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  Vertex root = graph::generate_rmat_range(cfg, c.seed % 7, c.seed % 7 + 1)[0].v;

  std::vector<Vertex> parent;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    uint64_t m = cfg.num_edges();
    auto slice = graph::generate_rmat_range(
        cfg, m * uint64_t(ctx.rank) / uint64_t(ctx.nranks()),
        m * uint64_t(ctx.rank + 1) / uint64_t(ctx.nranks()));
    auto deg = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_15d(ctx, space, slice, deg,
                                     {c.e_th, c.h_th});
    bfs::Bfs15dOptions opts;
    opts.sub_iteration_direction = c.sub_iter;
    opts.l2l_forwarding = c.forwarding;
    auto res = bfs::bfs15d_run(ctx, part, root, opts);
    auto gathered =
        ctx.world.allgatherv(std::span<const Vertex>(res.parent));
    if (ctx.rank == 0) parent = std::move(gathered);
  });
  auto edges = graph::generate_rmat(cfg);
  auto v = graph::validate_bfs(cfg.num_vertices(), edges, root, parent);
  EXPECT_TRUE(v.ok) << v.error;
  auto ref = graph::reference_bfs(cfg.num_vertices(), edges, root);
  for (uint64_t i = 0; i < cfg.num_vertices(); ++i)
    ASSERT_EQ(parent[i] != kNoVertex, ref[i] != kNoVertex) << "vertex " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Random, BfsSweep,
    ::testing::Values(
        SweepCase{101, 10, 2, 2, 128, 16, true, false},
        SweepCase{102, 10, 1, 3, 64, 8, true, true},
        SweepCase{103, 10, 3, 1, 256, 64, false, false},
        SweepCase{104, 11, 2, 2, 512, 128, true, false},
        SweepCase{105, 9, 2, 3, 32, 4, true, true},
        SweepCase{106, 10, 3, 3, 128, 128, false, true},
        SweepCase{107, 11, 2, 2, 1u << 20, 1u << 20, true, false},
        SweepCase{108, 9, 4, 2, 16, 2, true, false},
        SweepCase{109, 10, 2, 4, 2048, 1, true, true},
        SweepCase{110, 11, 1, 1, 128, 32, false, false},
        SweepCase{111, 10, 3, 2, 96, 24, true, false},
        SweepCase{112, 9, 1, 5, 48, 12, false, true},
        SweepCase{113, 11, 4, 4, 256, 32, true, true},
        SweepCase{114, 10, 2, 2, 8, 8, true, false},
        SweepCase{115, 9, 5, 1, 512, 2, true, false},
        SweepCase{116, 10, 4, 3, 64, 64, false, false}));

// ------------------------------------------------------- collective fuzz

class CollectiveFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CollectiveFuzz, AlltoallvMatchesReference) {
  const uint64_t seed = GetParam();
  sim::MeshShape mesh{2, 3};
  int p = mesh.ranks();
  // Reference message matrix.
  Xoshiro256StarStar rng(seed);
  std::vector<std::vector<std::vector<uint32_t>>> msgs(
      static_cast<size_t>(p),
      std::vector<std::vector<uint32_t>>(static_cast<size_t>(p)));
  for (int s = 0; s < p; ++s)
    for (int d = 0; d < p; ++d) {
      size_t n = rng.next_below(50);
      for (size_t i = 0; i < n; ++i)
        msgs[size_t(s)][size_t(d)].push_back(uint32_t(rng.next()));
    }
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    std::vector<size_t> off;
    auto got = ctx.world.alltoallv(msgs[size_t(ctx.rank)], &off);
    for (int s = 0; s < p; ++s) {
      const auto& want = msgs[size_t(s)][size_t(ctx.rank)];
      ASSERT_EQ(off[size_t(s) + 1] - off[size_t(s)], want.size());
      for (size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(got[off[size_t(s)] + i], want[i]);
    }
  });
}

TEST_P(CollectiveFuzz, ReduceScatterMinMatchesReference) {
  const uint64_t seed = GetParam();
  sim::MeshShape mesh{2, 2};
  int p = mesh.ranks();
  const size_t block = 37;
  Xoshiro256StarStar rng(seed ^ 0xABCD);
  std::vector<std::vector<int64_t>> contribs(static_cast<size_t>(p));
  for (auto& c : contribs) {
    c.resize(block * size_t(p));
    for (auto& x : c) x = int64_t(rng.next() % 1000) - 500;
  }
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto mine = ctx.world.reduce_scatter_block(
        std::span<const int64_t>(contribs[size_t(ctx.rank)]), block,
        [](int64_t a, int64_t b) { return std::min(a, b); });
    for (size_t i = 0; i < block; ++i) {
      int64_t want = contribs[0][size_t(ctx.rank) * block + i];
      for (int r = 1; r < p; ++r)
        want = std::min(want, contribs[size_t(r)][size_t(ctx.rank) * block + i]);
      ASSERT_EQ(mine[i], want);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------- sort fuzz

class SortFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SortFuzz, ParadisSortsArbitraryDistributions) {
  const uint64_t seed = GetParam();
  Xoshiro256StarStar rng(seed);
  // Mixture: uniform, clustered, and power-of-two-heavy values.
  std::vector<uint64_t> v(1 + rng.next_below(30000));
  for (auto& x : v) {
    switch (rng.next_below(3)) {
      case 0: x = rng.next(); break;
      case 1: x = 1000 + rng.next_below(16); break;
      default: x = uint64_t(1) << rng.next_below(63); break;
    }
  }
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  sort::paradis_sort(std::span(v), [](uint64_t x) { return x; });
  EXPECT_EQ(v, expected);
}

TEST_P(SortFuzz, OcsRmaHandlesStructPayloads) {
  struct Msg {
    uint32_t dst;
    uint32_t a;
    uint64_t b;
  };
  const uint64_t seed = GetParam();
  Xoshiro256StarStar rng(seed + 77);
  chip::Chip chip(chip::Geometry::tiny());
  std::vector<Msg> in(500 + rng.next_below(4000));
  for (auto& m : in) {
    m.dst = uint32_t(rng.next_below(11));
    m.a = uint32_t(rng.next());
    m.b = rng.next();
  }
  std::vector<Msg> out(in.size());
  sort::OcsParams params;
  params.buffer_bytes = 256;
  auto res = sort::ocs_rma_bucket_sort<Msg>(
      chip, in, std::span(out), 11, [](const Msg& m) { return m.dst; },
      -1, params);
  // Bucketed correctly and payloads intact (multiset equality on (a,b)).
  std::multiset<std::pair<uint32_t, uint64_t>> want, got;
  for (const auto& m : in) want.emplace(m.a, m.b);
  for (uint32_t bkt = 0; bkt < 11; ++bkt)
    for (uint64_t i = res.offsets[bkt]; i < res.offsets[bkt + 1]; ++i) {
      ASSERT_EQ(out[i].dst, bkt);
      got.emplace(out[i].a, out[i].b);
    }
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortFuzz, ::testing::Values(11, 12, 13, 14));

// ------------------------------------------------------ generator sweeps

class ScramblerSweep : public ::testing::TestWithParam<int> {};

void VertexScramblerBijectionCheck(int scale);

TEST_P(ScramblerSweep, BijectionAtEveryScale) {
  int scale = GetParam();
  VertexScramblerBijectionCheck(scale);
}

INSTANTIATE_TEST_SUITE_P(Scales, ScramblerSweep,
                         ::testing::Values(4, 7, 13, 16));

void VertexScramblerBijectionCheck(int scale) {
  graph::VertexScrambler s(scale, 999);
  uint64_t n = uint64_t(1) << scale;
  // Sampled round-trip (full for small scales).
  uint64_t step = n > (1 << 12) ? n / (1 << 12) : 1;
  for (uint64_t v = 0; v < n; v += step) {
    Vertex sv = s.scramble(Vertex(v));
    ASSERT_GE(sv, 0);
    ASSERT_LT(uint64_t(sv), n);
    ASSERT_EQ(s.unscramble(sv), Vertex(v));
  }
}

TEST(RmatProperties, EdgeCountMatchesEdgeFactor) {
  for (int ef : {8, 16, 32}) {
    Graph500Config cfg;
    cfg.scale = 8;
    cfg.edge_factor = ef;
    EXPECT_EQ(cfg.num_edges(), cfg.num_vertices() * uint64_t(ef));
    EXPECT_EQ(graph::generate_rmat(cfg).size(), cfg.num_edges());
  }
}

TEST(RmatProperties, DifferentSeedsGiveDifferentGraphs) {
  Graph500Config a, b;
  a.scale = b.scale = 10;
  a.seed = 1;
  b.seed = 2;
  auto ea = graph::generate_rmat(a);
  auto eb = graph::generate_rmat(b);
  size_t same = 0;
  for (size_t i = 0; i < ea.size(); ++i)
    if (ea[i] == eb[i]) ++same;
  EXPECT_LT(same, ea.size() / 100);
}

// ----------------------------------------------- cross-engine consistency

TEST(CrossEngine, AllEnginesAgreeOnReachability) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 55;
  sim::Topology topo(sim::MeshShape{2, 2});

  bfs::RunnerConfig c15;
  c15.graph = cfg;
  c15.num_roots = 3;
  c15.thresholds = {128, 32};
  bfs::RunnerConfig c1 = c15;
  c1.engine = bfs::EngineKind::OneD;

  auto r15 = bfs::run_graph500(topo, c15);
  auto r1 = bfs::run_graph500(topo, c1);
  ASSERT_TRUE(r15.all_valid);
  ASSERT_TRUE(r1.all_valid);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r15.runs[i].root, r1.runs[i].root);
    EXPECT_EQ(r15.runs[i].traversed_edges, r1.runs[i].traversed_edges);
  }
}

TEST(CrossEngine, ThresholdChoiceNeverChangesTheTraversalResult) {
  // Performance knob only: any (E, H) choice yields the same reachable set
  // and edge count.
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 66;
  sim::Topology topo(sim::MeshShape{2, 2});
  uint64_t expected = 0;
  for (auto th : {partition::DegreeThresholds{64, 8},
                  partition::DegreeThresholds{512, 512},
                  partition::DegreeThresholds{1u << 20, 0}}) {
    bfs::RunnerConfig c;
    c.graph = cfg;
    c.num_roots = 2;
    c.thresholds = th;
    auto r = bfs::run_graph500(topo, c);
    ASSERT_TRUE(r.all_valid);
    uint64_t sum = r.runs[0].traversed_edges + r.runs[1].traversed_edges;
    if (expected == 0)
      expected = sum;
    else
      EXPECT_EQ(sum, expected);
  }
}


// --------------------------------------------- runner with chip kernels

TEST(RunnerIntegration, ChipPullKernelsValidateEndToEnd) {
  for (auto kernel : {bfs::Bfs15dOptions::EhPullKernel::ChipGld,
                      bfs::Bfs15dOptions::EhPullKernel::ChipRma}) {
    bfs::RunnerConfig cfg;
    cfg.graph.scale = 9;
    cfg.graph.seed = 91;
    cfg.thresholds = {64, 16};
    cfg.num_roots = 2;
    cfg.bfs.pull_kernel = kernel;
    cfg.chip_geometry = chip::Geometry::tiny();
    sim::Topology topo(sim::MeshShape{2, 2});
    auto result = bfs::run_graph500(topo, cfg);
    EXPECT_TRUE(result.all_valid) << "kernel " << int(kernel);
  }
}

TEST(RunnerIntegration, CustomTopologyParametersAffectModeledTime) {
  bfs::RunnerConfig cfg;
  cfg.graph.scale = 11;
  cfg.thresholds = {128, 32};
  cfg.num_roots = 2;
  cfg.validate = false;
  sim::TopologyParams fast, slow;
  slow.nic_bytes_per_s = fast.nic_bytes_per_s / 100;
  slow.oversubscription = 32;
  auto rf = bfs::run_graph500(sim::Topology(sim::MeshShape{2, 2}, fast), cfg);
  auto rs = bfs::run_graph500(sim::Topology(sim::MeshShape{2, 2}, slow), cfg);
  // Identical work, slower network: modeled GTEPS must drop.
  EXPECT_GT(rf.harmonic_gteps, rs.harmonic_gteps * 1.5);
  EXPECT_EQ(rf.runs[0].traversed_edges, rs.runs[0].traversed_edges);
}

TEST(RunnerIntegration, InvalidRootConfigurationSurfaces) {
  // A root outside the vertex space must throw, not hang or corrupt.
  sim::MeshShape mesh{2, 2};
  graph::Graph500Config g;
  g.scale = 8;
  partition::VertexSpace space{g.num_vertices(), mesh.ranks()};
  EXPECT_THROW(
      sim::run_spmd(mesh,
                    [&](sim::RankContext& ctx) {
                      uint64_t m = g.num_edges();
                      auto slice = graph::generate_rmat_range(
                          g, m * uint64_t(ctx.rank) / uint64_t(ctx.nranks()),
                          m * uint64_t(ctx.rank + 1) / uint64_t(ctx.nranks()));
                      auto deg =
                          partition::compute_local_degrees(ctx, space, slice);
                      auto part = partition::build_15d(ctx, space, slice, deg,
                                                       {64, 16});
                      bfs::bfs15d_run(ctx, part,
                                      graph::Vertex(g.num_vertices() + 5));
                    }),
      CheckError);
}

}  // namespace
}  // namespace sunbfs
