// Figure 5: active-vertex percentage per sub-iteration, split by E/H/L.
//
// The paper observes that hub vertices (E, then H) are activated one to two
// iterations before the light mass: at SCALE 40 the E/H bars peak around
// iteration 2-3 while L peaks at 3-4, which is what justifies sub-iteration
// direction optimization.
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_fig05_activation");
  bench::header("Figure 5", "active vertices percentage per iteration (E/H/L)");
  bench::paper_line(
      "E and H activate nearly 100% of their class by iteration 2-3; "
      "L's bulk activates one iteration later");

  bfs::RunnerConfig cfg;
  cfg.graph.scale = 14 + bench::scale_delta();
  cfg.graph.seed = 5;
  cfg.thresholds = {1024, 64};
  cfg.num_roots = 1;
  cfg.validate = false;
  sim::Topology topo(sim::MeshShape{2, 2});
  auto result = bfs::run_graph500(topo, cfg);
  const auto& stats = result.runs[0].stats;

  std::printf("scale %d, thresholds E>=%llu H>=%llu: |E|=%llu |EH|=%llu\n\n",
              cfg.graph.scale, (unsigned long long)cfg.thresholds.e,
              (unsigned long long)cfg.thresholds.h,
              (unsigned long long)result.num_e,
              (unsigned long long)result.num_eh);
  uint64_t num_e = result.num_e, num_h = result.num_eh - result.num_e;
  uint64_t num_l = cfg.graph.num_vertices() - result.num_eh;
  std::printf("%4s %12s %12s %12s   %% of class active\n", "iter", "E", "H",
              "L");
  for (const auto& it : stats.iterations) {
    auto pct = [](uint64_t a, uint64_t b) {
      return b ? 100.0 * double(a) / double(b) : 0.0;
    };
    std::printf("%4d %11.3f%% %11.3f%% %11.3f%%   |E:%llu H:%llu L:%llu|\n",
                it.iteration, pct(it.active_e, num_e), pct(it.active_h, num_h),
                pct(it.active_l, num_l), (unsigned long long)it.active_e,
                (unsigned long long)it.active_h,
                (unsigned long long)it.active_l);
  }

  for (const auto& it : stats.iterations) {
    const std::string row = "fig05.iter" + std::to_string(it.iteration) + ".";
    bench::report().add_counter(row + "active_e", it.active_e);
    bench::report().add_counter(row + "active_h", it.active_h);
    bench::report().add_counter(row + "active_l", it.active_l);
  }
  bench::report().add_counter("fig05.num_e", num_e);
  bench::report().add_counter("fig05.num_h", num_h);
  bench::report().add_counter("fig05.num_l", num_l);
  bench::shape_line("E/H peak at an earlier iteration than L");
  return bench::finish();
}
