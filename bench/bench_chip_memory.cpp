// Architecture characterization of the chip model (§3.1/§3.3): the relative
// costs of LDM, RMA, LDCache (hit/thrash), GLD and atomics that motivate
// every on-chip technique in the paper.  Modeled cycles per operation.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "chip/chip.hpp"
#include "support/random.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_chip_memory");
  bench::header("Chip memory characterization",
                "modeled cost of each access mechanism");
  bench::paper_line(
      "SS3: RMA 'significantly lower latency than main memory'; GLD "
      "'marginally slower' than cached access; atomics 'inefficient'; "
      "LDCache 'not large enough to hold the hot data'");

  chip::Chip chip(chip::Geometry::sw26010pro());
  const int iters = 4000;
  std::vector<uint64_t> big(1 << 22);  // 32 MB working set
  std::vector<uint64_t> small(512);    // 4 KB working set
  std::atomic<uint64_t> counter{0};

  struct Probe {
    const char* name;
    double cycles_per_op;
  };
  std::vector<Probe> probes;

  chip.run(
      [&](chip::CpeContext& cpe) {
        if (cpe.cpe() != 0) return;
        Xoshiro256StarStar rng(3);
        cpe.ldm().reset_alloc();
        size_t ldm_off = cpe.ldm().alloc(4096);
        uint64_t* ldm_buf = cpe.ldm().as<uint64_t>(ldm_off);

        auto measure = [&](const char* name, auto&& op) {
          double c0 = cpe.cycles();
          for (int i = 0; i < iters; ++i) op();
          probes.push_back(Probe{name, (cpe.cycles() - c0) / iters});
        };
        measure("LDM load", [&] {
          cpe.add_cycles(cpe.cost().ldm_cycles);
          (void)ldm_buf[rng.next_below(512)];
        });
        measure("RMA get (peer LDM)", [&] {
          (void)cpe.rma_read<uint64_t>(1, ldm_off + 8 * (rng.next() & 255));
        });
        cpe.enable_ldcache(64 * 1024);
        measure("LDCache, 4KB hot set", [&] {
          (void)cpe.cached_load(small[rng.next_below(small.size())]);
        });
        measure("LDCache, 32MB set (thrash)", [&] {
          (void)cpe.cached_load(big[rng.next_below(big.size())]);
        });
        measure("GLD (uncached)", [&] {
          (void)cpe.gld(big[rng.next_below(big.size())]);
        });
        measure("atomic fetch-add", [&] { cpe.atomic_add(counter, 1); });
        measure("DMA 2KB chunk (per 8B)", [&] {
          cpe.dma_get(ldm_buf, big.data() + (rng.next() & 0xFFFF), 2048);
          cpe.add_cycles(-cpe.cost().dma_startup_cycles);  // report amortized
        });
        probes.back().cycles_per_op /= 256.0;
      },
      1);

  std::printf("%-30s %14s\n", "mechanism", "cycles/op");
  for (const auto& p : probes) {
    std::printf("%-30s %14.2f\n", p.name, p.cycles_per_op);
    std::string slug = "chipmem.";
    for (const char* c = p.name; *c; ++c)
      slug += std::isalnum((unsigned char)*c) ? char(std::tolower(*c)) : '_';
    bench::report().gauge(slug + ".cycles_per_op", p.cycles_per_op);
  }

  bench::shape_line(
      "LDM ~ 1 cycle << RMA ~ tens << GLD/atomics ~ hundreds; LDCache only "
      "helps when the working set fits — the premise of CG-aware "
      "segmenting");
  return bench::finish();
}
