// Figure 12: BFS performance across (E, H) degree-threshold choices.
//
// The paper grid-searches H in {4096, 2048, 512, 128} x E in {16384, 4096,
// 2048, 512} at SCALE 35 on 256 nodes, finding (1) having an H level helps
// even without network oversubscription, and (2) the E threshold matters a
// lot; infeasible corners (E < H) are zero.
#include <map>
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_fig12_thresholds");
  bench::header("Figure 12", "GTEPS over (E, H) degree thresholds");
  bench::paper_line(
      "SCALE 35 / 256 nodes: best 848.1 GTEPS at (E=4096, H=128); "
      "interior beats both degenerate edges; E<H infeasible");

  bfs::RunnerConfig base;
  base.graph.scale = 14 + bench::scale_delta();
  base.graph.seed = 12;
  base.num_roots = 6;
  base.validate = false;
  sim::Topology topo(sim::MeshShape{4, 4});

  std::vector<uint64_t> h_values = {4096, 1024, 256, 64};
  std::vector<uint64_t> e_values = {16384, 4096, 1024, 256};

  std::printf("scale %d, %d ranks; rows: E threshold, columns: H threshold; "
              "GTEPS (modeled)\n\n        ", base.graph.scale,
              topo.mesh().ranks());
  for (uint64_t h : h_values) std::printf(" %9llu", (unsigned long long)h);
  std::printf("   <- H threshold\n");

  // grid[e][h] plus, per E row, the |H|=0 corner (h == e: the mid-degree
  // vertices fall back to L, as in the paper's leftmost columns).
  std::map<uint64_t, std::map<uint64_t, double>> grid;
  std::map<uint64_t, double> no_h;
  for (uint64_t e : e_values) {
    bfs::RunnerConfig corner = base;
    corner.thresholds = {e, e};
    no_h[e] = bfs::run_graph500(topo, corner).harmonic_gteps;
    std::printf("%7llu ", (unsigned long long)e);
    for (uint64_t h : h_values) {
      if (e < h) {
        std::printf(" %9s", "-");  // infeasible: E must be >= H
        continue;
      }
      bfs::RunnerConfig cfg = base;
      cfg.thresholds = {e, h};
      grid[e][h] = bfs::run_graph500(topo, cfg).harmonic_gteps;
      bench::report().gauge("fig12.e" + std::to_string(e) + ".h" +
                                std::to_string(h) + ".gteps",
                            grid[e][h]);
      std::printf(" %9.3f", grid[e][h]);
    }
    std::printf("\n");
  }

  std::printf("\nvalue of the H level (best H per E row vs |H|=0, where the "
              "mid-degree vertices stay L):\n");
  for (uint64_t e : e_values) {
    double best_h_gteps = 0;
    uint64_t best_h = 0;
    for (auto& [h, g] : grid[e])
      if (g > best_h_gteps) {
        best_h_gteps = g;
        best_h = h;
      }
    std::printf("  E=%6llu: |H|=0 %.3f -> best %.3f at H=%llu (%+.1f%%)\n",
                (unsigned long long)e, no_h[e], best_h_gteps,
                (unsigned long long)best_h,
                100.0 * (best_h_gteps / no_h[e] - 1.0));
  }

  std::printf("\nnote: at simulation scale the |H|=0 corners stay viable "
              "because the L2L bottom-up's world frontier gather costs "
              "kilobytes here; at the paper's SCALE 44 it is terabytes per "
              "rank (see bench_table1_partitioning), which is why H exists.\n");
  bench::shape_line(
      "the E threshold shifts GTEPS substantially and only interior "
      "threshold choices stay feasible at paper scale; the H-vs-L gain "
      "itself needs a machine larger than this simulation to appear");
  return bench::finish();
}
