// Ablation of the §5 implementation techniques that Figures 10/15 fold into
// the end-to-end number: delayed reduction of the delegated parent array,
// edge-aware vertex-cut load balancing for EH2EH push, and hierarchical L2L
// forwarding.  Each row disables exactly one technique from the full
// configuration.
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_ablation_engine");
  bench::header("Engine ablation",
                "delayed reduction / vertex cut / L2L forwarding");
  bench::paper_line(
      "SS5: delayed reduction 'significantly reduces collective "
      "communication volume during the BFS run'; edge-aware vertex cut "
      "'provides reasonable performance' under frontier skew");

  bfs::RunnerConfig base;
  base.graph.scale = 15 + bench::scale_delta();
  base.graph.seed = 4;
  base.thresholds = {2048, 256};
  base.num_roots = 4;
  base.validate = false;
  sim::Topology topo(sim::MeshShape{4, 4});

  struct Row {
    const char* name;
    const char* slug;  ///< metrics key: "ablation.<slug>.*"
    void (*tweak)(bfs::Bfs15dOptions&);
  };
  std::vector<Row> rows = {
      {"full configuration", "full", [](bfs::Bfs15dOptions&) {}},
      {"- delayed reduction (reduce every iteration)", "no_delayed_reduction",
       [](bfs::Bfs15dOptions& o) { o.delayed_parent_reduction = false; }},
      {"- edge-aware vertex cut", "no_edge_aware_cut",
       [](bfs::Bfs15dOptions& o) { o.edge_aware_vertex_cut = false; }},
      {"+ L2L hierarchical forwarding", "l2l_forwarding",
       [](bfs::Bfs15dOptions& o) { o.l2l_forwarding = true; }},
  };

  std::printf("scale %d, %d ranks, %d roots\n\n", base.graph.scale,
              topo.mesh().ranks(), base.num_roots);
  std::printf("%-46s %10s %14s %16s\n", "configuration", "GTEPS",
              "reduce time", "reduce bytes");
  for (const auto& row : rows) {
    bfs::RunnerConfig cfg = base;
    row.tweak(cfg.bfs);
    auto result = bfs::run_graph500(topo, cfg);
    double reduce_s = 0;
    uint64_t rs_bytes = 0;
    for (const auto& run : result.runs) {
      reduce_s += run.stats.reduce_cpu_s + run.stats.reduce_comm_modeled_s;
      rs_bytes +=
          run.stats.comm.entry(sim::CollectiveType::ReduceScatter).bytes_sent;
    }
    std::printf("%-46s %10.3f %12.4fms %16llu\n", row.name,
                result.harmonic_gteps, reduce_s * 1e3,
                (unsigned long long)rs_bytes);
    const std::string key = std::string("ablation.") + row.slug + ".";
    bench::report().gauge(key + "gteps", result.harmonic_gteps);
    bench::report().gauge(key + "reduce_ms", reduce_s * 1e3);
    bench::report().add_counter(key + "reduce_scatter_bytes", rs_bytes);
  }

  bench::shape_line(
      "delayed reduction cuts reduce-scatter volume by ~the iteration "
      "count; the other toggles are second-order at simulation scale");
  return bench::finish();
}
