// Figure 13 + §6.2.2: load balance of the 1.5D partition.
//
// The paper partitions the SCALE-44 graph over 103,912 nodes and reports the
// CDF of per-partition edge counts for each of the six subgraphs: at most a
// 4.2% min-max spread in EH2EH and <= 0.35% in the others; max-over-average
// 2.8% / 0.17%.
#include <vector>

#include "bench/common.hpp"
#include "graph/rmat.hpp"
#include "partition/balance.hpp"
#include "partition/part15d.hpp"
#include "sim/runtime.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_fig13_balance");
  bench::header("Figure 13", "distribution of partitioned subgraph sizes");
  bench::paper_line(
      "SCALE 44 over 103,912 nodes: min-max spread 4.2% (EH2EH), "
      "<=0.35% (others); max/avg 2.8% / <=0.17%");

  graph::Graph500Config cfg;
  cfg.scale = 16 + bench::scale_delta();
  sim::MeshShape mesh{4, 4};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  partition::DegreeThresholds th{2048, 128};
  std::printf("scale %d over %d ranks (mesh %dx%d), thresholds E>=%llu "
              "H>=%llu\n\n",
              cfg.scale, mesh.ranks(), mesh.rows, mesh.cols,
              (unsigned long long)th.e, (unsigned long long)th.h);

  partition::BalanceReport report;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    uint64_t m = cfg.num_edges();
    auto slice = graph::generate_rmat_range(
        cfg, m * uint64_t(ctx.rank) / uint64_t(ctx.nranks()),
        m * uint64_t(ctx.rank + 1) / uint64_t(ctx.nranks()));
    auto deg = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_15d(ctx, space, slice, deg, th);
    auto rep = partition::gather_balance(ctx, part);
    if (ctx.rank == 0) report = rep;
  });

  std::printf("%-8s %14s %14s %14s %9s %9s\n", "subgraph", "min arcs",
              "avg arcs", "max arcs", "spread", "max/avg-1");
  for (int s = 0; s < partition::kSubgraphCount; ++s) {
    const auto& sm = report.per_subgraph[size_t(s)];
    std::printf("%-8s %14.0f %14.0f %14.0f %8.2f%% %8.2f%%\n",
                partition::subgraph_name(partition::Subgraph(s)), sm.min,
                sm.mean(), sm.max, sm.spread() * 100,
                sm.max_over_mean() * 100);
    const std::string row =
        std::string("fig13.") +
        partition::subgraph_name(partition::Subgraph(s)) + ".";
    bench::report().gauge(row + "spread_pct", sm.spread() * 100);
    bench::report().gauge(row + "max_over_mean_pct", sm.max_over_mean() * 100);
  }

  bench::shape_line(
      "every subgraph spreads only a few percent across ranks without any "
      "explicit rebalancing (vertices distributed evenly, edges follow the "
      "1.5D placement rules)");
  return bench::finish();
}
