// Micro-benchmarks (google-benchmark) for the substrate kernels: PARADIS
// in-place radix sort vs std::sort, R-MAT generation rate, CSR build rate,
// bit-vector scans.  These are engineering benchmarks, not paper exhibits.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"

#include <algorithm>
#include <vector>

#include "graph/csr.hpp"
#include "graph/rmat.hpp"
#include "sort/paradis.hpp"
#include "support/bitvector.hpp"
#include "support/random.hpp"

using namespace sunbfs;

namespace {

std::vector<uint64_t> random_data(size_t n) {
  Xoshiro256StarStar rng(7);
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = rng.next();
  return v;
}

void BM_ParadisSort(benchmark::State& state) {
  auto base = random_data(size_t(state.range(0)));
  ThreadPool pool(1);
  for (auto _ : state) {
    state.PauseTiming();
    auto v = base;
    state.ResumeTiming();
    sort::paradis_sort(std::span(v), [](uint64_t x) { return x; }, pool);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParadisSort)->Arg(1 << 14)->Arg(1 << 18);

void BM_StdSort(benchmark::State& state) {
  auto base = random_data(size_t(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    auto v = base;
    state.ResumeTiming();
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSort)->Arg(1 << 14)->Arg(1 << 18);

void BM_RmatGenerate(benchmark::State& state) {
  graph::Graph500Config cfg;
  cfg.scale = int(state.range(0));
  for (auto _ : state) {
    auto edges = graph::generate_rmat_range(cfg, 0, 1 << 14);
    benchmark::DoNotOptimize(edges.data());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
}
BENCHMARK(BM_RmatGenerate)->Arg(16)->Arg(24);

void BM_CsrBuild(benchmark::State& state) {
  graph::Graph500Config cfg;
  cfg.scale = 14;
  auto edges = graph::generate_rmat(cfg);
  for (auto _ : state) {
    auto csr = graph::Csr::from_undirected(cfg.num_vertices(), edges);
    benchmark::DoNotOptimize(csr.num_arcs());
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_CsrBuild);

void BM_BitVectorScan(benchmark::State& state) {
  BitVector bv(1 << 20);
  Xoshiro256StarStar rng(3);
  for (int i = 0; i < (1 << 14); ++i) bv.set(rng.next_below(bv.size()));
  for (auto _ : state) {
    uint64_t sum = 0;
    bv.for_each_set([&](size_t i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitVectorScan);

void BM_VertexScramble(benchmark::State& state) {
  graph::VertexScrambler s(30, 1);
  graph::Vertex v = 12345;
  for (auto _ : state) {
    v = s.scramble(v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_VertexScramble);

}  // namespace

// Custom main instead of benchmark_main: google-benchmark's default main
// rejects unknown flags, so strip the observability flags (--metrics-out /
// --trace-out, handled by bench::init/finish) before Initialize sees them.
int main(int argc, char** argv) {
  sunbfs::bench::init(argc, argv, "bench_micro_kernels");
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 ||
        std::strcmp(argv[i], "--trace-out") == 0) {
      ++i;  // skip the flag's value too
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int pass_argc = int(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return sunbfs::bench::finish();
}
