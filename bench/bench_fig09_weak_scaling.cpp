// Figure 9: weak scalability.
//
// The paper scales from 256 nodes (SCALE 35) to 103,912 nodes (SCALE 44),
// keeping per-node work roughly constant, and reports 52% relative parallel
// efficiency at the largest scale.  We keep per-rank vertices constant while
// doubling the rank count, and report GTEPS on the modeled clock.
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_fig09_weak_scaling");
  bench::header("Figure 9", "weak scalability");
  bench::paper_line(
      "848 GTEPS at 256 nodes -> 180,792 GTEPS at 103,912 nodes; "
      "52% relative parallel efficiency vs ideal scaling");

  struct Point {
    sim::MeshShape mesh;
    int scale;
  };
  int base_scale = 12 + bench::scale_delta();
  std::vector<Point> points = {
      {{1, 1}, base_scale},     {{1, 2}, base_scale + 1},
      {{2, 2}, base_scale + 2}, {{2, 4}, base_scale + 3},
      {{4, 4}, base_scale + 4},
  };

  std::printf("per-rank share constant (scale - log2(ranks) = %d)\n\n",
              base_scale);
  std::printf("%6s %6s %12s %12s %11s %14s %12s\n", "ranks", "scale",
              "GTEPS", "ideal", "efficiency", "comm share", "imbalance");
  double gteps0 = 0;
  for (const auto& p : points) {
    bfs::RunnerConfig cfg;
    cfg.graph.scale = p.scale;
    cfg.graph.seed = 9;
    cfg.thresholds = {2048, 256};
    cfg.num_roots = 3;
    cfg.validate = false;
    sim::Topology topo(p.mesh);
    auto result = bfs::run_graph500(topo, cfg);
    if (gteps0 == 0) gteps0 = result.harmonic_gteps;
    double ideal = gteps0 * p.mesh.ranks();
    // Imbalance is the wait-for-peers measured at every collective as the
    // thread-CPU arrival spread (mean per rank), not a derived difference.
    double comm = 0, total = 0, imbalance = 0;
    for (const auto& r : result.runs) {
      comm += r.stats.total_comm_modeled_s();
      total += r.modeled_s;
      imbalance += r.stats.comm.total_imbalance_s() / p.mesh.ranks();
    }
    std::printf("%6d %6d %12.3f %12.3f %10.1f%% %13.1f%% %9.3f ms\n",
                p.mesh.ranks(), p.scale, result.harmonic_gteps, ideal,
                100.0 * result.harmonic_gteps / ideal,
                total > 0 ? 100.0 * comm / (total * p.mesh.ranks()) : 0.0,
                imbalance * 1e3);
    const std::string row =
        "fig09.ranks" + std::to_string(p.mesh.ranks()) + ".";
    bench::report().gauge(row + "gteps", result.harmonic_gteps);
    bench::report().gauge(row + "efficiency_pct",
                          100.0 * result.harmonic_gteps / ideal);
    bench::report().gauge(
        row + "comm_share_pct",
        total > 0 ? 100.0 * comm / (total * p.mesh.ranks()) : 0.0);
    bench::report().gauge(row + "imbalance_s", imbalance);
  }

  bench::shape_line(
      "GTEPS grows with rank count; efficiency declines to roughly half at "
      "the largest mesh as modeled communication grows (oversubscribed "
      "top-level tree), mirroring the paper's 52%");
  return bench::finish();
}
