// Figure 9: weak scalability.
//
// The paper scales from 256 nodes (SCALE 35) to 103,912 nodes (SCALE 44),
// keeping per-node work roughly constant, and reports 52% relative parallel
// efficiency at the largest scale.  We keep per-rank vertices constant while
// doubling the rank count, and report GTEPS on the modeled clock.
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"

using namespace sunbfs;

int main() {
  bench::header("Figure 9", "weak scalability");
  bench::paper_line(
      "848 GTEPS at 256 nodes -> 180,792 GTEPS at 103,912 nodes; "
      "52% relative parallel efficiency vs ideal scaling");

  struct Point {
    sim::MeshShape mesh;
    int scale;
  };
  int base_scale = 12 + bench::scale_delta();
  std::vector<Point> points = {
      {{1, 1}, base_scale},     {{1, 2}, base_scale + 1},
      {{2, 2}, base_scale + 2}, {{2, 4}, base_scale + 3},
      {{4, 4}, base_scale + 4},
  };

  std::printf("per-rank share constant (scale - log2(ranks) = %d)\n\n",
              base_scale);
  std::printf("%6s %6s %12s %12s %11s %14s\n", "ranks", "scale", "GTEPS",
              "ideal", "efficiency", "comm share");
  double gteps0 = 0;
  for (const auto& p : points) {
    bfs::RunnerConfig cfg;
    cfg.graph.scale = p.scale;
    cfg.graph.seed = 9;
    cfg.thresholds = {2048, 256};
    cfg.num_roots = 3;
    cfg.validate = false;
    sim::Topology topo(p.mesh);
    auto result = bfs::run_graph500(topo, cfg);
    if (gteps0 == 0) gteps0 = result.harmonic_gteps;
    double ideal = gteps0 * p.mesh.ranks();
    double comm = 0, total = 0;
    for (const auto& r : result.runs) {
      comm += r.stats.total_comm_modeled_s();
      total += r.modeled_s;
    }
    std::printf("%6d %6d %12.3f %12.3f %10.1f%% %13.1f%%\n", p.mesh.ranks(),
                p.scale, result.harmonic_gteps, ideal,
                100.0 * result.harmonic_gteps / ideal,
                total > 0 ? 100.0 * comm / (total * p.mesh.ranks()) : 0.0);
  }

  bench::shape_line(
      "GTEPS grows with rank count; efficiency declines to roughly half at "
      "the largest mesh as modeled communication grows (oversubscribed "
      "top-level tree), mirroring the paper's 52%");
  return 0;
}
