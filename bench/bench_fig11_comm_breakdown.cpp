// Figure 11: execution time breakdown by communication type during scaling.
//
// The paper categorizes the run into compute, imbalance/latency, alltoallv,
// allgather and reduce-scatter, and observes the collective share growing
// with scale (alltoallv and reduce-scatter dominating it) while the
// imbalance component stays flat.
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_fig11_comm_breakdown");
  bench::header("Figure 11", "time breakdown by communication type");
  bench::paper_line(
      "communication share grows with scale, led by alltoallv and "
      "reduce-scatter; imbalance/latency roughly constant");

  int base_scale = 12 + bench::scale_delta();
  std::vector<sim::MeshShape> meshes = {{1, 2}, {2, 2}, {2, 4}, {4, 4}};

  std::printf("%6s | %8s %10s %10s %10s %10s %10s %10s\n", "ranks", "compute",
              "imbalance", "alltoallv", "allgather", "reduce_sc", "allreduce",
              "broadcast");

  for (size_t i = 0; i < meshes.size(); ++i) {
    bfs::RunnerConfig cfg;
    cfg.graph.scale = base_scale + int(i) + 1;
    cfg.graph.seed = 9;
    cfg.thresholds = {2048, 256};
    cfg.num_roots = 2;
    cfg.validate = false;
    sim::Topology topo(meshes[i]);
    auto result = bfs::run_graph500(topo, cfg);

    // compute = mean per-rank CPU; imbalance = mean per-rank wait-for-peers
    // measured at every collective as the thread-CPU arrival spread
    // (CommStats::imbalance_s — a first-class measurement, not a
    // max-minus-mean subtraction); comm = modeled per type.
    int p = meshes[i].ranks();
    double comm_by_type[sim::kCollectiveTypeCount] = {};
    double cpu_sum = 0, imbalance = 0;
    for (const auto& run : result.runs) {
      cpu_sum += run.stats.total_cpu_s() / p;  // stats are summed over ranks
      imbalance += run.stats.comm.total_imbalance_s() / p;
      for (int t = 0; t < sim::kCollectiveTypeCount; ++t)
        comm_by_type[t] +=
            run.stats.comm.entry(sim::CollectiveType(t)).modeled_s / p;
    }
    double total = cpu_sum + imbalance;
    for (double c : comm_by_type) total += c;
    std::printf("%6d | %7.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
                p, 100 * cpu_sum / total, 100 * imbalance / total,
                100 * comm_by_type[int(sim::CollectiveType::Alltoallv)] / total,
                100 * comm_by_type[int(sim::CollectiveType::Allgather)] / total,
                100 * comm_by_type[int(sim::CollectiveType::ReduceScatter)] / total,
                100 * comm_by_type[int(sim::CollectiveType::Allreduce)] / total,
                100 * comm_by_type[int(sim::CollectiveType::Barrier)] / total);
    // Machine-readable Figure 11 row (percent shares, keyed by rank count).
    const std::string row = "fig11.ranks" + std::to_string(p) + ".";
    auto& rep = bench::report();
    rep.gauge(row + "compute_pct", 100 * cpu_sum / total);
    rep.gauge(row + "imbalance_pct", 100 * imbalance / total);
    rep.gauge(row + "alltoallv_pct",
              100 * comm_by_type[int(sim::CollectiveType::Alltoallv)] / total);
    rep.gauge(row + "allgather_pct",
              100 * comm_by_type[int(sim::CollectiveType::Allgather)] / total);
    rep.gauge(row + "reduce_scatter_pct",
              100 * comm_by_type[int(sim::CollectiveType::ReduceScatter)] /
                  total);
    rep.gauge(row + "allreduce_pct",
              100 * comm_by_type[int(sim::CollectiveType::Allreduce)] / total);
    rep.gauge(row + "imbalance_s", imbalance);

    // Encoding on/off axis: the same pipeline with raw wire structs, compared
    // on the deterministic search-phase byte counts (the breakdown above ran
    // with the adaptive encoding on — the default).
    bfs::RunnerConfig raw_cfg = cfg;
    raw_cfg.bfs.encoding.enabled = false;
    raw_cfg.bfs1d.encoding.enabled = false;
    auto raw = bfs::run_graph500(topo, raw_cfg);
    const double a2a_red =
        raw.search_alltoallv_bytes
            ? 100.0 * (1.0 - double(result.search_alltoallv_bytes) /
                                 double(raw.search_alltoallv_bytes))
            : 0.0;
    std::printf("%6s | encoding: alltoallv %llu -> %llu bytes "
                "(%.1f%% reduction), allgather %llu -> %llu\n",
                "", (unsigned long long)raw.search_alltoallv_bytes,
                (unsigned long long)result.search_alltoallv_bytes, a2a_red,
                (unsigned long long)raw.search_allgather_bytes,
                (unsigned long long)result.search_allgather_bytes);
    rep.add_counter(row + "encoding.alltoallv_bytes",
                    result.search_alltoallv_bytes);
    rep.add_counter(row + "encoding.alltoallv_bytes_raw",
                    raw.search_alltoallv_bytes);
    rep.add_counter(row + "encoding.allgather_bytes",
                    result.search_allgather_bytes);
    rep.add_counter(row + "encoding.allgather_bytes_raw",
                    raw.search_allgather_bytes);
    rep.gauge(row + "encoding.alltoallv_reduction_pct", a2a_red);

    // Exchange-backend axis: the same mesh driven through each ExchangePlan
    // (sim/exchange.hpp), compared on the inter-supernode subset of the
    // search alltoallv bytes — the traffic that crosses the oversubscribed
    // top-level links.  The axis pins the 1D engine top-down (pull levels
    // use the allgather, which no exchange plan touches) so every level
    // exercises the plan under test; bench_exchange is the full exhibit.
    uint64_t exch_direct_inter = 0;
    for (sim::ExchangeBackend backend :
         {sim::ExchangeBackend::Direct, sim::ExchangeBackend::Butterfly,
          sim::ExchangeBackend::TwoDCA}) {
      bfs::RunnerConfig ecfg = cfg;
      ecfg.engine = bfs::EngineKind::OneD;
      ecfg.bfs1d.pull_ratio = 2.0;
      ecfg.bfs1d.exchange.backend = backend;
      ecfg.bfs.exchange.backend = backend;
      auto eres = bfs::run_graph500(topo, ecfg);
      if (backend == sim::ExchangeBackend::Direct)
        exch_direct_inter = eres.search_alltoallv_inter_bytes;
      const double red =
          exch_direct_inter
              ? 100.0 * (1.0 - double(eres.search_alltoallv_inter_bytes) /
                                   double(exch_direct_inter))
              : 0.0;
      std::printf("%6s | exchange %-9s: alltoallv %llu bytes, "
                  "%llu inter-supernode (%.1f%% vs direct)\n",
                  "", sim::exchange_backend_name(backend),
                  (unsigned long long)eres.search_alltoallv_bytes,
                  (unsigned long long)eres.search_alltoallv_inter_bytes, red);
      const std::string ekey =
          row + "exchange." + sim::exchange_backend_name(backend) + ".";
      rep.add_counter(ekey + "alltoallv_bytes", eres.search_alltoallv_bytes);
      rep.add_counter(ekey + "alltoallv_inter_bytes",
                      eres.search_alltoallv_inter_bytes);
      rep.gauge(ekey + "inter_reduction_pct", red);
    }
  }
  std::printf("\nnote: EH frontier unions run as allreduce on this "
              "implementation; the paper's reduce-scatter+allgather pair is "
              "the same mesh-wide union pattern.\n");

  bench::shape_line(
      "collective share grows with rank count; point-to-point alltoallv and "
      "the frontier-union reductions dominate the communication time");
  return bench::finish();
}
