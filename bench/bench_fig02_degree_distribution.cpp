// Figure 2: degree distribution of a Graph 500 R-MAT graph.
//
// The paper shows a SCALE-40 log-log scatter: a heavy tail reaching degree
// ~1e7 with the counts organized in discrete peaks (hypergeometric clusters)
// rather than a smooth power law.  R-MAT is self-similar, so the same
// structure appears at bench scale.
#include <cmath>
#include <map>

#include "bench/common.hpp"
#include "graph/csr.hpp"
#include "graph/gteps.hpp"
#include "graph/rmat.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_fig02_degree_distribution");
  bench::header("Figure 2", "degree distribution of an R-MAT graph");
  bench::paper_line(
      "SCALE 40: multi-peak heavy-tailed distribution, max degree ~1e7, "
      "vertex counts spanning 1..1e9 on log-log axes");

  graph::Graph500Config cfg;
  cfg.scale = 16 + bench::scale_delta();
  std::printf("scale %d (%llu vertices, %llu edges)\n\n", cfg.scale,
              (unsigned long long)cfg.num_vertices(),
              (unsigned long long)cfg.num_edges());

  auto edges = graph::generate_rmat(cfg);
  auto degrees = graph::undirected_degrees(cfg.num_vertices(), edges);
  auto dist = graph::degree_distribution(degrees);

  // Log-log histogram rows: one row per factor-of-2 degree band.
  std::printf("%-20s %-14s %s\n", "degree band", "vertices", "log-log bar");
  uint64_t max_degree = dist.rbegin()->first;
  uint64_t isolated = dist.count(0) ? dist.at(0) : 0;
  for (uint64_t lo = 1; lo <= max_degree; lo *= 2) {
    uint64_t hi = lo * 2;
    uint64_t count = 0;
    for (auto it = dist.lower_bound(lo); it != dist.end() && it->first < hi;
         ++it)
      count += it->second;
    if (count == 0) continue;
    int bar = int(std::log2(double(count) + 1) * 2);
    std::printf("[%7llu, %7llu) %-14llu %.*s\n", (unsigned long long)lo,
                (unsigned long long)hi, (unsigned long long)count, bar,
                "########################################################");
  }
  std::printf("\nisolated vertices: %llu\n", (unsigned long long)isolated);
  std::printf("max degree: %llu (mean %.1f => skew %.0fx)\n",
              (unsigned long long)max_degree,
              2.0 * double(cfg.num_edges()) / double(cfg.num_vertices()),
              double(max_degree) /
                  (2.0 * double(cfg.num_edges()) / double(cfg.num_vertices())));

  // Discreteness: count distinct degree values in the tail vs its width —
  // the paper's "multiple hypergeometric distributions centered at peaks".
  uint64_t tail_lo = max_degree / 16;
  uint64_t distinct_tail = 0;
  for (auto it = dist.lower_bound(tail_lo); it != dist.end(); ++it)
    ++distinct_tail;
  std::printf("tail [%llu, %llu]: only %llu distinct degree values over a "
              "%llu-wide range (discrete peaks)\n",
              (unsigned long long)tail_lo, (unsigned long long)max_degree,
              (unsigned long long)distinct_tail,
              (unsigned long long)(max_degree - tail_lo));

  bench::report().add_counter("fig02.max_degree", max_degree);
  bench::report().add_counter("fig02.isolated_vertices", isolated);
  bench::report().add_counter("fig02.distinct_tail_degrees", distinct_tail);
  bench::report().gauge(
      "fig02.skew", double(max_degree) / (2.0 * double(cfg.num_edges()) /
                                          double(cfg.num_vertices())));
  bench::shape_line(
      "heavy tail with max degree orders of magnitude above the mean; "
      "sparse, clustered degree values in the tail");
  return bench::finish();
}
