// Figure 14 + §6.3: throughput of bucketing implementations.
//
// The paper buckets 4 GB of uniformly random 64-bit integers by their low 8
// bits and reports: MPE 0.0406 GB/s, 1 CG 12.5 GB/s, 6 CGs 58.6 GB/s (47.0%
// memory-bandwidth utilization, 1443x over MPE).  We run the same kernel on
// the chip model (full SW26010-Pro geometry) with a smaller buffer — the
// modeled GB/s is data-size independent once buffers amortize.
#include <cinttypes>
#include <vector>

#include "bench/common.hpp"
#include "chip/chip.hpp"
#include "sort/bucket_baselines.hpp"
#include "sort/ocs_rma.hpp"
#include "support/random.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_fig14_ocs_rma");
  bench::header("Figure 14", "throughput of bucketing implementations");
  bench::paper_line(
      "MPE 0.0406 GB/s | 1 CG 12.5 GB/s | 6 CGs 58.6 GB/s "
      "(47.0% of 2x124.5 GB/s effective; 1443x over MPE)");

  const size_t n = size_t(1) << (bench::env_int("SUNBFS_OCS_LOG_N", 20));
  Xoshiro256StarStar rng(99);
  std::vector<uint64_t> input(n);
  for (auto& x : input) x = rng.next();
  std::vector<uint64_t> output(n);
  auto bucket_of = [](uint64_t v) { return uint32_t(v & 0xFF); };
  const uint64_t bytes = n * sizeof(uint64_t);
  const uint32_t buckets = 256;

  chip::Chip chip(chip::Geometry::sw26010pro());

  auto mpe = sort::mpe_bucket_sort<uint64_t>(chip, input, std::span(output),
                                             buckets, bucket_of);
  double mpe_gbps = mpe.report.modeled_bytes_per_s(bytes) / 1e9;
  std::printf("%-22s %10.4f GB/s\n", "MPE (sequential)", mpe_gbps);

  auto one_cg = sort::ocs_rma_bucket_sort<uint64_t>(
      chip, input, std::span(output), buckets, bucket_of, 1);
  double one_gbps = one_cg.report.modeled_bytes_per_s(bytes) / 1e9;
  std::printf("%-22s %10.4f GB/s   (atomic ops: %" PRIu64 ")\n",
              "OCS-RMA, 1 CG", one_gbps, one_cg.report.totals.atomic_ops);

  auto six_cg = sort::ocs_rma_bucket_sort<uint64_t>(
      chip, input, std::span(output), buckets, bucket_of, 6);
  double six_gbps = six_cg.report.modeled_bytes_per_s(bytes) / 1e9;
  std::printf("%-22s %10.4f GB/s   (atomic ops: %" PRIu64 ")\n",
              "OCS-RMA, 6 CGs", six_gbps, six_cg.report.totals.atomic_ops);

  // §6.3 comparison context: atomic-per-record CPE bucketing (the approach
  // OCS-RMA replaces).
  auto atomic = sort::atomic_append_bucket_sort<uint64_t>(
      chip, input, std::span(output), buckets, bucket_of, 6);
  double atomic_gbps = atomic.report.modeled_bytes_per_s(bytes) / 1e9;
  std::printf("%-22s %10.4f GB/s\n", "atomic-append, 6 CGs", atomic_gbps);

  // Memory-bandwidth utilization: one read + one write per record.
  double util = 2.0 * six_gbps / 249.0 * 100.0;
  std::printf("\n6-CG bandwidth utilization: %.1f%% of 249 GB/s peak "
              "(paper: 47.0%%)\n", util);
  std::printf("6 CGs / 1 CG   = %6.2fx   (paper: 4.69x)\n",
              six_gbps / one_gbps);
  std::printf("6 CGs / MPE    = %6.0fx   (paper: 1443x)\n",
              six_gbps / mpe_gbps);
  std::printf("OCS / atomic   = %6.2fx\n", six_gbps / atomic_gbps);

  bench::shape_line(
      "1 CG >> MPE; 6 CGs ~4-6x of 1 CG (cross-CG atomics tax); "
      "utilization in the tens of percent; OCS-RMA beats atomic bucketing");
  bench::report().gauge("fig14.mpe_gbps", mpe_gbps);
  bench::report().gauge("fig14.ocs_1cg_gbps", one_gbps);
  bench::report().gauge("fig14.ocs_6cg_gbps", six_gbps);
  bench::report().gauge("fig14.atomic_6cg_gbps", atomic_gbps);
  bench::report().gauge("fig14.utilization_pct", util);
  return bench::finish();
}
