// Table 1: large-scale BFS results by partitioning method.
//
// The paper's table compares records: 1D with heavy delegates (Checconi'14,
// Lin'16), 2D (Ueno'15, Nakao'21) and this work's degree-aware 1.5D, with
// 1.5D winning at equal or larger problem sizes.  We cannot re-run other
// machines, but we can run all three partitioning strategies on the same
// simulated machine and graph: vanilla 1D, the |H|=0 degeneration
// ("1D with heavy delegates"), the |L|=0 degeneration ("2D"), and full 1.5D.
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_table1_partitioning");
  bench::header("Table 1", "BFS by partitioning method, same machine & graph");
  bench::paper_line(
      "1D+delegates 15.4/23.8 TTEPS-class records; 2D 38.6/103 kGTEPS; "
      "this work (1.5D) 180,792 GTEPS at 8x the graph size");

  bfs::RunnerConfig base;
  base.graph.scale = 17 + bench::scale_delta();
  base.graph.seed = 1;
  base.num_roots = 4;
  base.validate = false;
  sim::Topology topo(sim::MeshShape{4, 4});

  struct Row {
    const char* name;
    const char* slug;  ///< metrics key: "table1.<slug>.*"
    bfs::RunnerConfig cfg;
  };
  std::vector<Row> rows;
  {
    bfs::RunnerConfig c = base;
    c.engine = bfs::EngineKind::OneD;
    rows.push_back({"vanilla 1D", "vanilla_1d", c});
  }
  {
    bfs::RunnerConfig c = base;  // |H| = 0: heavy delegates only
    c.thresholds = {512, 512};
    rows.push_back({"1D + heavy delegates", "1d_heavy_delegates", c});
  }
  {
    bfs::RunnerConfig c = base;  // |L| = 0: every connected vertex delegated
    c.thresholds = {4096, 0};
    rows.push_back({"2D (all delegated)", "2d_all_delegated", c});
  }
  {
    bfs::RunnerConfig c = base;
    c.thresholds = {4096, 512};
    rows.push_back({"degree-aware 1.5D", "degree_aware_15d", c});
  }

  std::printf("scale %d, %d ranks, %d roots; modeled clock\n\n",
              base.graph.scale, topo.mesh().ranks(), base.num_roots);
  std::printf("%-22s %12s %16s %18s\n", "partitioning", "GTEPS",
              "bytes sent", "inter-supernode");
  double gteps_15d = 0, gteps_best_baseline = 0;
  for (auto& row : rows) {
    auto result = bfs::run_graph500(topo, row.cfg);
    auto agg = result.spmd.aggregate();
    std::printf("%-22s %12.3f %16llu %18llu\n", row.name,
                result.harmonic_gteps,
                (unsigned long long)agg.total_bytes_sent(),
                (unsigned long long)agg.total_bytes_inter_supernode());
    const std::string key = std::string("table1.") + row.slug + ".";
    bench::report().gauge(key + "gteps", result.harmonic_gteps);
    bench::report().add_counter(key + "bytes_sent", agg.total_bytes_sent());
    bench::report().add_counter(key + "bytes_inter_supernode",
                                agg.total_bytes_inter_supernode());
    if (std::string(row.name) == "degree-aware 1.5D")
      gteps_15d = result.harmonic_gteps;
    else
      gteps_best_baseline = std::max(gteps_best_baseline,
                                     result.harmonic_gteps);
  }
  bench::report().gauge("table1.speedup_vs_best_baseline",
                        gteps_15d / gteps_best_baseline);
  bench::report().info("table1.scale", int64_t(base.graph.scale));
  bench::report().info("table1.ranks", int64_t(topo.mesh().ranks()));
  bench::report().info("table1.roots", int64_t(base.num_roots));
  std::printf("\n1.5D / best delegation baseline = %.2fx (paper: 1.75x over "
              "the 2021 2D record)\n", gteps_15d / gteps_best_baseline);

  // §2.3's capacity argument, which no small simulation can show directly:
  // per-rank working set of the bottom-up frontier at the paper's SCALE 44
  // over 103,912 nodes.  Vanilla 1D gathers the full N-bit frontier; 1D
  // delegation replicates ~0.1% of vertices as 8-byte entries; 1.5D holds
  // its N/P owned bits plus the |EH| bitmap.
  const double n44 = std::pow(2.0, 44), p44 = 103912.0;
  std::printf("\nper-rank frontier working set extrapolated to SCALE 44 / "
              "103,912 nodes (96 GiB/node):\n");
  std::printf("  %-22s %10.1f GiB  (full N-bit frontier: infeasible)\n",
              "vanilla 1D", n44 / 8 / (1 << 30));
  std::printf("  %-22s %10.1f GiB  (0.1%% of N delegated as 8 B entries: "
              "infeasible, SS2.3)\n",
              "1D + heavy delegates", n44 * 0.001 * 8 / (1 << 30));
  std::printf("  %-22s %10.1f GiB  (|V|sqrt(P) shared bits: infeasible, "
              "SS2.3)\n",
              "2D", n44 / p44 * std::sqrt(p44) / 8 / (1 << 30) * 8);
  std::printf("  %-22s %10.4f GiB  (N/P owned bits + 100M-vertex column EH "
              "bitmap)\n",
              "degree-aware 1.5D", (n44 / p44 / 8 + 100e6 / 8) / (1 << 30));

  bench::shape_line(
      "1.5D beats the delegation baselines at equal resources and is the "
      "only method whose per-rank state stays feasible at SCALE 44; vanilla "
      "1D stays competitive only while the whole frontier fits in memory "
      "(it cannot beyond simulation scale)");
  return bench::finish();
}
