// §6.1 headline: the full Graph 500 benchmark pipeline, end to end.
//
// The paper: SCALE 44 (281T edges) on 103,912 nodes, 64 search keys, 1.55 s
// mean traversal, 180,792 GTEPS, results validated per Graph 500 spec 2.0.
// We run the identical pipeline — generate, partition, BFS from random
// keys, validate every run — at simulation scale, and report the same
// quantities.
//
// The pipeline is run once per threads-per-rank value in the sweep list
// (SUNBFS_TPR_SWEEP, default "1,2,4"), which is the measured basis of the
// "threads-per-rank scaling" exhibit in EXPERIMENTS.md and of the ≥1.5x
// intra-rank speedup acceptance check on multi-core hosts (docs/PERF.md;
// on a single hardware thread the sweep only shows oversubscription cost).
// Besides the usual --metrics-out report, the bench writes a compact
// sunbfs.bench/1 summary (BENCH_headline.json, or $SUNBFS_BENCH_OUT) that
// tools/bench_compare.py diffs across checkouts to catch regressions.
#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"

using namespace sunbfs;

namespace {

struct SweepPoint {
  int threads_per_rank = 1;
  double wall_s = 0;     // host wall time summed over the BFS runs
  double modeled_s = 0;  // mean per-root modeled traversal time
  double gteps = 0;      // harmonic mean over the modeled clock
};

std::vector<int> sweep_list() {
  std::vector<int> tprs;
  const char* env = std::getenv("SUNBFS_TPR_SWEEP");
  std::string spec = env ? env : "1,2,4";
  for (size_t pos = 0; pos < spec.size();) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int v = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (v > 0) tprs.push_back(v);
    pos = comma + 1;
  }
  if (tprs.empty()) tprs.push_back(1);
  return tprs;
}

uint64_t peak_rss_bytes() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return uint64_t(ru.ru_maxrss) * 1024;  // Linux reports KiB
}

bool write_bench_json(const char* path, int scale, int ranks,
                      const SweepPoint& best,
                      const std::vector<SweepPoint>& sweep) {
  FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sunbfs.bench/1\",\n");
  std::fprintf(f, "  \"bench\": \"headline_graph500\",\n");
  std::fprintf(f, "  \"scale\": %d,\n  \"ranks\": %d,\n", scale, ranks);
  std::fprintf(f, "  \"metrics\": {\n");
  std::fprintf(f, "    \"gteps\": %.6f,\n", best.gteps);
  std::fprintf(f, "    \"wall_s\": %.6f,\n", best.wall_s);
  std::fprintf(f, "    \"modeled_s\": %.9f,\n", best.modeled_s);
  std::fprintf(f, "    \"peak_rss_bytes\": %llu\n",
               (unsigned long long)peak_rss_bytes());
  std::fprintf(f, "  },\n  \"sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i)
    std::fprintf(f,
                 "    {\"threads_per_rank\": %d, \"wall_s\": %.6f, "
                 "\"modeled_s\": %.9f, \"gteps\": %.6f}%s\n",
                 sweep[i].threads_per_rank, sweep[i].wall_s,
                 sweep[i].modeled_s, sweep[i].gteps,
                 i + 1 < sweep.size() ? "," : "");
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

// Encoding-ablation summary (BENCH_encoding.json): the deterministic
// search-phase wire bytes with the adaptive encoding on vs off.  Only
// exactly reproducible quantities go in — byte counts and the derived
// reduction percentages — so tools/bench_compare.py can gate on them with a
// tight tolerance (no wall clock, no RSS).
bool write_encoding_json(const char* path, int scale, int ranks,
                         uint64_t a2a_on, uint64_t ag_on, uint64_t a2a_off,
                         uint64_t ag_off) {
  FILE* f = std::fopen(path, "w");
  if (!f) return false;
  const double a2a_red =
      a2a_off ? 100.0 * (1.0 - double(a2a_on) / double(a2a_off)) : 0.0;
  const double ag_red =
      ag_off ? 100.0 * (1.0 - double(ag_on) / double(ag_off)) : 0.0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sunbfs.bench/1\",\n");
  std::fprintf(f, "  \"bench\": \"encoding_ablation\",\n");
  std::fprintf(f, "  \"scale\": %d,\n  \"ranks\": %d,\n", scale, ranks);
  std::fprintf(f, "  \"metrics\": {\n");
  std::fprintf(f, "    \"alltoallv_bytes\": %llu,\n",
               (unsigned long long)a2a_on);
  std::fprintf(f, "    \"allgather_bytes\": %llu,\n",
               (unsigned long long)ag_on);
  std::fprintf(f, "    \"alltoallv_bytes_raw\": %llu,\n",
               (unsigned long long)a2a_off);
  std::fprintf(f, "    \"allgather_bytes_raw\": %llu,\n",
               (unsigned long long)ag_off);
  std::fprintf(f, "    \"alltoallv_reduction_pct\": %.4f,\n", a2a_red);
  std::fprintf(f, "    \"allgather_reduction_pct\": %.4f\n", ag_red);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_headline_graph500");
  bench::header("Headline (§6.1)", "full Graph 500 BFS benchmark");
  bench::paper_line(
      "SCALE 44, 103,912 nodes, 40.5M cores: 180,792 GTEPS over 64 roots, "
      "validated (1.75x previous record, 8x graph size)");

  bfs::RunnerConfig cfg;
  cfg.graph.scale = 15 + bench::scale_delta();
  cfg.graph.seed = 2026;
  cfg.thresholds = {4096, 512};
  cfg.num_roots = bench::env_int("SUNBFS_ROOTS", 8);
  cfg.validate = true;
  sim::Topology topo(sim::MeshShape{4, 4});

  std::printf("SCALE %d (%llu vertices, %llu edges), %d ranks, %d search "
              "keys, validation ON\n\n",
              cfg.graph.scale, (unsigned long long)cfg.graph.num_vertices(),
              (unsigned long long)cfg.graph.num_edges(), topo.mesh().ranks(),
              cfg.num_roots);

  std::vector<SweepPoint> sweep;
  bfs::RunnerResult result;  // last (highest-tpr) full result for the report
  for (int tpr : sweep_list()) {
    cfg.bfs.threads_per_rank = tpr;
    cfg.bfs1d.threads_per_rank = tpr;
    result = bfs::run_graph500(topo, cfg);
    SweepPoint p;
    p.threads_per_rank = tpr;
    for (const auto& r : result.runs) {
      p.wall_s += r.wall_s;
      p.modeled_s += r.modeled_s / double(result.runs.size());
    }
    p.gteps = result.harmonic_gteps;
    sweep.push_back(p);
    std::printf("threads/rank %2d: BFS wall %8.3f s, mean modeled %.6f s, "
                "%.3f GTEPS, staging allocs warmup/steady %llu/%llu, "
                "valid %s\n",
                tpr, p.wall_s, p.modeled_s, p.gteps,
                (unsigned long long)result.staging_allocs_warmup,
                (unsigned long long)result.staging_allocs_steady,
                result.all_valid ? "yes" : "NO");
    if (!result.all_valid) return bench::finish(1);
    const std::string prefix =
        "headline.tpr" + std::to_string(tpr) + ".";
    bench::report().gauge(prefix + "wall_s", p.wall_s);
    bench::report().gauge(prefix + "modeled_s", p.modeled_s);
    bench::report().gauge(prefix + "gteps", p.gteps);
    bench::report().add_counter(prefix + "staging_allocs_steady",
                                result.staging_allocs_steady);
  }

  std::printf("\n%6s %14s %14s %12s %8s\n", "key", "root", "trav. edges",
              "modeled s", "valid");
  for (size_t i = 0; i < result.runs.size(); ++i) {
    const auto& r = result.runs[i];
    std::printf("%6zu %14lld %14llu %12.6f %8s\n", i, (long long)r.root,
                (unsigned long long)r.traversed_edges, r.modeled_s,
                r.valid ? "yes" : r.error.c_str());
  }
  // Graph 500 output-format-style summary block (from the last sweep run;
  // the modeled clock is thread-count independent).
  {
    std::vector<double> times;
    for (const auto& r : result.runs) times.push_back(r.modeled_s);
    std::sort(times.begin(), times.end());
    double sum = 0;
    for (double t : times) sum += t;
    double mean = sum / double(times.size());
    double var = 0;
    for (double t : times) var += (t - mean) * (t - mean);
    var /= double(std::max<size_t>(1, times.size() - 1));
    std::printf("\nSCALE:                 %d\n", cfg.graph.scale);
    std::printf("edgefactor:            %d\n", cfg.graph.edge_factor);
    std::printf("NBFS:                  %d\n", cfg.num_roots);
    std::printf("construction_time:     %.6f s (wall)\n",
                result.partition_wall_s);
    std::printf("min_time:              %.6f\n", times.front());
    std::printf("median_time:           %.6f\n", times[times.size() / 2]);
    std::printf("max_time:              %.6f\n", times.back());
    std::printf("mean_time:             %.6f\n", mean);
    std::printf("stddev_time:           %.6f\n", std::sqrt(var));
    std::printf("harmonic_mean_TEPS:    %.3e\n",
                result.harmonic_gteps * 1e9);
  }

  std::printf("\nclassification: |EH| = %llu (|E| = %llu) of %llu vertices\n",
              (unsigned long long)result.num_eh,
              (unsigned long long)result.num_e,
              (unsigned long long)cfg.graph.num_vertices());
  std::printf("harmonic mean: %.3f GTEPS (modeled clock)\n",
              result.harmonic_gteps);
  std::printf("all runs validated: %s\n", result.all_valid ? "YES" : "NO");

  // Regression-tracking summary: best wall-clock point of the sweep.
  const SweepPoint& best = *std::min_element(
      sweep.begin(), sweep.end(),
      [](const SweepPoint& a, const SweepPoint& b) {
        return a.wall_s < b.wall_s;
      });
  const char* bench_out = std::getenv("SUNBFS_BENCH_OUT");
  if (!bench_out) bench_out = "BENCH_headline.json";
  if (write_bench_json(bench_out, cfg.graph.scale, topo.mesh().ranks(), best,
                       sweep))
    std::printf("bench summary: wrote %s (best at %d threads/rank)\n",
                bench_out, best.threads_per_rank);
  else
    std::printf("bench summary: FAILED writing %s\n", bench_out);

  // Encoding on/off ablation on the deterministic search wire bytes.  The
  // sweep above ran with the adaptive encoding on (the default); one more
  // pipeline run with raw structs gives the denominator.  Validation is
  // skipped for the off run — the compared bytes cover the search phase
  // only, and parents are bit-identical on/off (tests/test_differential).
  {
    const uint64_t a2a_on = result.search_alltoallv_bytes;
    const uint64_t ag_on = result.search_allgather_bytes;
    bfs::RunnerConfig off_cfg = cfg;
    off_cfg.validate = false;
    off_cfg.bfs.encoding.enabled = false;
    off_cfg.bfs1d.encoding.enabled = false;
    auto off = bfs::run_graph500(topo, off_cfg);
    const double a2a_red =
        off.search_alltoallv_bytes
            ? 100.0 * (1.0 - double(a2a_on) /
                                 double(off.search_alltoallv_bytes))
            : 0.0;
    std::printf("\nencoding ablation (search wire bytes, on vs raw):\n");
    std::printf("  alltoallv %llu -> %llu (%.1f%% reduction)\n",
                (unsigned long long)off.search_alltoallv_bytes,
                (unsigned long long)a2a_on, a2a_red);
    std::printf("  allgather %llu -> %llu\n",
                (unsigned long long)off.search_allgather_bytes,
                (unsigned long long)ag_on);
    const char* enc_out = std::getenv("SUNBFS_BENCH_ENCODING_OUT");
    if (!enc_out) enc_out = "BENCH_encoding.json";
    if (write_encoding_json(enc_out, cfg.graph.scale, topo.mesh().ranks(),
                            a2a_on, ag_on, off.search_alltoallv_bytes,
                            off.search_allgather_bytes))
      std::printf("encoding summary: wrote %s\n", enc_out);
    else
      std::printf("encoding summary: FAILED writing %s\n", enc_out);
    bench::report().gauge("headline.encoding.alltoallv_reduction_pct",
                          a2a_red);
    bench::report().add_counter("headline.encoding.alltoallv_bytes", a2a_on);
    bench::report().add_counter("headline.encoding.alltoallv_bytes_raw",
                                off.search_alltoallv_bytes);
  }

  // Full machine-readable run report (graph500.* / bfs.* / comm.* keys).
  result.to_report(bench::report());
  bench::report().info("headline.scale", int64_t(cfg.graph.scale));
  bench::shape_line(
      "every search key passes Graph 500 validation; harmonic-mean GTEPS "
      "reported on the modeled machine clock; intra-rank sweep measured "
      "for the threads-per-rank exhibit");
  return bench::finish(result.all_valid ? 0 : 1);
}
