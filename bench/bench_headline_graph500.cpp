// §6.1 headline: the full Graph 500 benchmark pipeline, end to end.
//
// The paper: SCALE 44 (281T edges) on 103,912 nodes, 64 search keys, 1.55 s
// mean traversal, 180,792 GTEPS, results validated per Graph 500 spec 2.0.
// We run the identical pipeline — generate, partition, BFS from random
// keys, validate every run — at simulation scale, and report the same
// quantities.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_headline_graph500");
  bench::header("Headline (§6.1)", "full Graph 500 BFS benchmark");
  bench::paper_line(
      "SCALE 44, 103,912 nodes, 40.5M cores: 180,792 GTEPS over 64 roots, "
      "validated (1.75x previous record, 8x graph size)");

  bfs::RunnerConfig cfg;
  cfg.graph.scale = 15 + bench::scale_delta();
  cfg.graph.seed = 2026;
  cfg.thresholds = {4096, 512};
  cfg.num_roots = bench::env_int("SUNBFS_ROOTS", 8);
  cfg.validate = true;
  sim::Topology topo(sim::MeshShape{4, 4});

  std::printf("SCALE %d (%llu vertices, %llu edges), %d ranks, %d search "
              "keys, validation ON\n\n",
              cfg.graph.scale, (unsigned long long)cfg.graph.num_vertices(),
              (unsigned long long)cfg.graph.num_edges(), topo.mesh().ranks(),
              cfg.num_roots);

  auto result = bfs::run_graph500(topo, cfg);

  std::printf("%6s %14s %14s %12s %8s\n", "key", "root", "trav. edges",
              "modeled s", "valid");
  for (size_t i = 0; i < result.runs.size(); ++i) {
    const auto& r = result.runs[i];
    std::printf("%6zu %14lld %14llu %12.6f %8s\n", i, (long long)r.root,
                (unsigned long long)r.traversed_edges, r.modeled_s,
                r.valid ? "yes" : r.error.c_str());
  }
  // Graph 500 output-format-style summary block.
  {
    std::vector<double> times;
    for (const auto& r : result.runs) times.push_back(r.modeled_s);
    std::sort(times.begin(), times.end());
    double sum = 0;
    for (double t : times) sum += t;
    double mean = sum / double(times.size());
    double var = 0;
    for (double t : times) var += (t - mean) * (t - mean);
    var /= double(std::max<size_t>(1, times.size() - 1));
    std::printf("\nSCALE:                 %d\n", cfg.graph.scale);
    std::printf("edgefactor:            %d\n", cfg.graph.edge_factor);
    std::printf("NBFS:                  %d\n", cfg.num_roots);
    std::printf("construction_time:     %.6f s (wall)\n",
                result.partition_wall_s);
    std::printf("min_time:              %.6f\n", times.front());
    std::printf("median_time:           %.6f\n", times[times.size() / 2]);
    std::printf("max_time:              %.6f\n", times.back());
    std::printf("mean_time:             %.6f\n", mean);
    std::printf("stddev_time:           %.6f\n", std::sqrt(var));
    std::printf("harmonic_mean_TEPS:    %.3e\n",
                result.harmonic_gteps * 1e9);
  }

  std::printf("\nclassification: |EH| = %llu (|E| = %llu) of %llu vertices\n",
              (unsigned long long)result.num_eh,
              (unsigned long long)result.num_e,
              (unsigned long long)cfg.graph.num_vertices());
  std::printf("harmonic mean: %.3f GTEPS (modeled clock)\n",
              result.harmonic_gteps);
  std::printf("all runs validated: %s\n", result.all_valid ? "YES" : "NO");

  // Full machine-readable run report (graph500.* / bfs.* / comm.* keys).
  result.to_report(bench::report());
  bench::report().info("headline.scale", int64_t(cfg.graph.scale));
  bench::shape_line(
      "every search key passes Graph 500 validation; harmonic-mean GTEPS "
      "reported on the modeled machine clock");
  return bench::finish(result.all_valid ? 0 : 1);
}
