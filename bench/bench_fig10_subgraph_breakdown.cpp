// Figure 10: execution time breakdown by subgraph during weak scaling.
//
// The paper splits BFS time into the six subgraphs plus delegated-parent
// reduction and "other", and observes: L2L takes an outsized share relative
// to its edge count (sparse, latency-bound); EH2EH's share shrinks at larger
// scales thanks to the partitioning + sub-iteration optimizations.
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_fig10_subgraph_breakdown");
  bench::header("Figure 10", "time breakdown by subgraph");
  bench::paper_line(
      "L2L large despite being the smallest subgraph; EH2EH share shrinks "
      "with scale; reduce visible at large scales");

  int base_scale = 12 + bench::scale_delta();
  std::vector<sim::MeshShape> meshes = {{1, 2}, {2, 2}, {2, 4}, {4, 4}};

  std::printf("%6s |", "ranks");
  for (int s = 0; s < partition::kSubgraphCount; ++s)
    std::printf(" %6s", partition::subgraph_name(partition::Subgraph(s)));
  std::printf(" %6s %6s |  share of modeled time\n", "reduce", "other");

  for (size_t i = 0; i < meshes.size(); ++i) {
    bfs::RunnerConfig cfg;
    cfg.graph.scale = base_scale + int(i) + 1;
    cfg.graph.seed = 9;
    cfg.thresholds = {2048, 256};
    cfg.num_roots = 2;
    cfg.validate = false;
    sim::Topology topo(meshes[i]);
    auto result = bfs::run_graph500(topo, cfg);

    double t[partition::kSubgraphCount] = {};
    double reduce = 0, other = 0, total = 0;
    for (const auto& run : result.runs) {
      for (int s = 0; s < partition::kSubgraphCount; ++s)
        t[s] += run.stats.push_cpu_s[size_t(s)] +
                run.stats.pull_cpu_s[size_t(s)] +
                run.stats.comm_modeled_s[size_t(s)];
      reduce += run.stats.reduce_cpu_s + run.stats.reduce_comm_modeled_s;
      other += run.stats.other_cpu_s + run.stats.other_comm_modeled_s;
    }
    for (double x : t) total += x;
    total += reduce + other;
    std::printf("%6d |", meshes[i].ranks());
    const std::string row =
        "fig10.ranks" + std::to_string(meshes[i].ranks()) + ".";
    for (int s = 0; s < partition::kSubgraphCount; ++s) {
      std::printf(" %5.1f%%", 100.0 * t[s] / total);
      bench::report().gauge(
          row + partition::subgraph_name(partition::Subgraph(s)) + "_pct",
          100.0 * t[s] / total);
    }
    std::printf(" %5.1f%% %5.1f%%\n", 100.0 * reduce / total,
                100.0 * other / total);
    bench::report().gauge(row + "reduce_pct", 100.0 * reduce / total);
    bench::report().gauge(row + "other_pct", 100.0 * other / total);
  }

  bench::shape_line(
      "L2L's time share far exceeds its ~10-15% edge share; EH2EH stays "
      "moderate despite holding the majority of edges");
  return bench::finish();
}
