// Figure 15 + §6.4: impact of sub-iteration direction optimization and
// CG-aware core subgraph segmenting.
//
// The paper measures three configurations at SCALE 35 / 256 nodes:
//   (a) Baseline   — vanilla whole-iteration direction optimization,
//                     unsegmented (GLD) pull;
//   (b) + Sub-Iter — per-subgraph directions;
//   (c) + Segment. — plus the RMA-segmented EH2EH pull (9x on that kernel).
// Time is broken into EH2EH pull / others pull / EH2EH push / others push /
// other.
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"
#include "bfs/segmenting.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_fig15_ablation");
  bench::header("Figure 15", "ablation: sub-iteration direction + segmenting");
  bench::paper_line(
      "sub-iteration moves expensive EH pushes into cheap pulls; segmenting "
      "speeds the EH2EH pull kernel ~9x");

  bfs::RunnerConfig base;
  base.graph.scale = 15 + bench::scale_delta();
  base.graph.seed = 15;
  base.thresholds = {2048, 64};
  base.num_roots = 3;
  base.validate = false;
  base.chip_geometry = chip::Geometry{6, 16, 64 * 1024};  // scaled-down chip
  sim::Topology topo(sim::MeshShape{2, 2});

  struct Config {
    const char* name;
    bool sub_iter;
    bfs::Bfs15dOptions::EhPullKernel kernel;
  };
  std::vector<Config> configs = {
      {"Baseline", false, bfs::Bfs15dOptions::EhPullKernel::ChipGld},
      {"+ Sub-Iter.", true, bfs::Bfs15dOptions::EhPullKernel::ChipGld},
      {"+ Segment.", true, bfs::Bfs15dOptions::EhPullKernel::ChipRma},
  };

  std::printf("scale %d, %d ranks, chip %d CGs x %d CPEs\n\n",
              base.graph.scale, topo.mesh().ranks(),
              base.chip_geometry.core_groups, base.chip_geometry.cpes_per_cg);
  std::printf("%-12s %12s %12s %12s %12s %10s %12s\n", "config",
              "EH2EH pull", "others pull", "EH2EH push", "others push",
              "other", "total (ms)");

  double eh_pull[3] = {};
  for (size_t i = 0; i < configs.size(); ++i) {
    bfs::RunnerConfig cfg = base;
    cfg.bfs.sub_iteration_direction = configs[i].sub_iter;
    cfg.bfs.pull_kernel = configs[i].kernel;
    auto result = bfs::run_graph500(topo, cfg);
    double eh2eh_pull = 0, others_pull = 0, eh2eh_push = 0, others_push = 0,
           other = 0;
    for (const auto& run : result.runs) {
      const auto& s = run.stats;
      int eh = int(partition::Subgraph::EH2EH);
      eh2eh_pull += s.pull_cpu_s[size_t(eh)];
      eh2eh_push += s.push_cpu_s[size_t(eh)];
      for (int g = 0; g < partition::kSubgraphCount; ++g) {
        if (g == eh) continue;
        others_pull += s.pull_cpu_s[size_t(g)];
        others_push += s.push_cpu_s[size_t(g)];
      }
      other += s.reduce_cpu_s + s.other_cpu_s + s.total_comm_modeled_s();
    }
    double total = eh2eh_pull + others_pull + eh2eh_push + others_push + other;
    std::printf("%-12s %11.3f%% %11.3f%% %11.3f%% %11.3f%% %9.3f%% %12.4f\n",
                configs[i].name, 100 * eh2eh_pull / total,
                100 * others_pull / total, 100 * eh2eh_push / total,
                100 * others_push / total, 100 * other / total, total * 1e3);
    const std::string row = "fig15.config" + std::to_string(i) + ".";
    bench::report().gauge(row + "eh2eh_pull_pct", 100 * eh2eh_pull / total);
    bench::report().gauge(row + "eh2eh_push_pct", 100 * eh2eh_push / total);
    bench::report().gauge(row + "total_ms", total * 1e3);
    eh_pull[i] = eh2eh_pull;
  }
  (void)eh_pull;
  // Kernel-level comparison on the heaviest-iteration regime (the paper's
  // 9x claim is specifically about the largest bottom-up iteration): a
  // dense pull over the core subgraph, half the EH frontier active.
  {
    partition::VertexSpace space{base.graph.num_vertices(), 1};
    sim::run_spmd(sim::MeshShape{1, 1}, [&](sim::RankContext& ctx) {
      auto slice = graph::generate_rmat(base.graph);
      auto deg = partition::compute_local_degrees(ctx, space, slice);
      auto part = partition::build_15d(ctx, space, slice, deg,
                                       {base.thresholds.e, 16});
      chip::Chip chip(base.chip_geometry);
      bfs::ChipEhPuller puller(chip, part, ctx.mesh, 0);
      uint64_t k = part.cls.num_eh();
      BitVector curr(k), visited(k);
      for (uint64_t i = 0; i < k; i += 2) curr.set(i);
      std::vector<graph::Vertex> cand(k, graph::kNoVertex);
      auto gld = puller.pull(curr, visited, cand, false);
      auto rma = puller.pull(curr, visited, cand, true);
      std::printf("\nEH2EH pull kernel, heaviest iteration (|EH|=%llu, half "
                  "active):\n  GLD baseline %.3f ms -> segmented RMA %.3f "
                  "ms: %.1fx (paper: 9x)\n",
                  (unsigned long long)k, gld.report.modeled_seconds * 1e3,
                  rma.report.modeled_seconds * 1e3,
                  gld.report.modeled_seconds / rma.report.modeled_seconds);
      bench::report().gauge(
          "fig15.segmenting_speedup",
          gld.report.modeled_seconds / rma.report.modeled_seconds);
    });
  }

  bench::shape_line(
      "(a)->(b): EH-related push time drops, replaced by cheaper pulls; "
      "(b)->(c): the EH2EH pull bar shrinks by a large factor");
  return bench::finish();
}
