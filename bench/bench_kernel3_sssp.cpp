// Graph 500 kernel 3 (SSSP) companion bench.
//
// Not a paper exhibit — the paper measures BFS only — but §8 names SSSP
// among the algorithms the 1.5D techniques carry to, and Graph 500 defines
// SSSP as its second kernel.  Same pipeline as the BFS headline: generate,
// partition 1.5D, run the search keys, validate (reference-free structural
// rules), report harmonic-mean GTEPS.
#include "analytics/delta_stepping.hpp"
#include "analytics/sssp_runner.hpp"
#include "partition/part15d.hpp"
#include "bench/common.hpp"
#include "support/timer.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_kernel3_sssp");
  bench::header("Graph 500 kernel 3", "SSSP over the 1.5D partition");
  bench::paper_line(
      "SS8: 'the push-pull selection ... works on many graph algorithms, "
      "including SSSP'");

  analytics::SsspRunnerConfig cfg;
  cfg.graph.scale = 13 + bench::scale_delta();
  cfg.graph.seed = 3;
  cfg.thresholds = {1024, 128};
  cfg.num_roots = 4;
  sim::Topology topo(sim::MeshShape{2, 2});

  auto result = analytics::run_graph500_sssp(topo, cfg);

  std::printf("SCALE %d, %d ranks, %d keys, weights [1, %llu], |EH| = %llu\n\n",
              cfg.graph.scale, topo.mesh().ranks(), cfg.num_roots,
              (unsigned long long)cfg.sssp.max_weight,
              (unsigned long long)result.num_eh);
  std::printf("%6s %14s %14s %12s %7s\n", "key", "root", "trav. edges",
              "modeled s", "valid");
  for (size_t i = 0; i < result.runs.size(); ++i) {
    const auto& r = result.runs[i];
    std::printf("%6zu %14lld %14llu %12.6f %7s\n", i, (long long)r.root,
                (unsigned long long)r.traversed_edges, r.modeled_s,
                r.valid ? "yes" : r.error.c_str());
  }
  std::printf("\nharmonic mean: %.3f GTEPS (modeled)\n",
              result.harmonic_gteps);
  std::printf("all runs validated: %s\n", result.all_valid ? "YES" : "NO");

  // Engine comparison: Bellman-Ford-style propagation vs delta-stepping.
  {
    partition::VertexSpace space{cfg.graph.num_vertices(), 4};
    sim::run_spmd(sim::MeshShape{2, 2}, [&](sim::RankContext& ctx) {
      uint64_t m = cfg.graph.num_edges();
      auto slice = graph::generate_rmat_range(
          cfg.graph, m * uint64_t(ctx.rank) / 4,
          m * uint64_t(ctx.rank + 1) / 4);
      auto deg = partition::compute_local_degrees(ctx, space, slice);
      auto part = partition::build_15d(ctx, space, slice, deg,
                                       cfg.thresholds);
      graph::Vertex root = result.runs[0].root;
      ThreadCpuTimer t1;
      analytics::sssp15d(ctx, part, root, cfg.sssp);
      double bf = t1.seconds();
      analytics::DeltaSteppingStats st;
      ThreadCpuTimer t2;
      analytics::sssp15d_delta(ctx, part, root, {cfg.sssp, 128}, &st);
      double ds = t2.seconds();
      if (ctx.rank == 0)
        std::printf("\nengines from key 0: Bellman-Ford rounds %.3f ms CPU; "
                    "delta-stepping (delta=128) %.3f ms CPU, %d buckets, "
                    "%d light rounds\n",
                    bf * 1e3, ds * 1e3, st.buckets_processed,
                    st.light_rounds);
    });
  }

  bench::shape_line(
      "the partition built for BFS serves SSSP unchanged; every run passes "
      "the reference-free distance validation; delta-stepping buckets the "
      "relaxations exactly as the kernel-3 reference codes do");
  bench::report().gauge("kernel3.harmonic_gteps", result.harmonic_gteps);
  bench::report().info("kernel3.all_valid",
                       result.all_valid ? "true" : "false");
  return bench::finish(result.all_valid ? 0 : 1);
}
