// Exchange-backend ablation: the same Graph 500 search pipeline run under
// each ExchangePlan backend (direct alltoallv, log(P) butterfly, 2D-CA
// row/column split), compared on the search-phase alltoallv bytes — total
// and the inter-supernode subset that crosses the 8x-oversubscribed
// top-level links — plus the Topology cost-model score of each plan.
//
// The push phase is pinned top-down (pull_ratio > 1) because the staged
// backends' merge win lives in the push alltoallv: duplicate visit messages
// from many senders collapse at every stage before they reach the expensive
// links (ButterFly BFS, arXiv 2103.13577).  Direction-optimized production
// runs spend most dense levels in the pull allgather, which no exchange plan
// touches; see docs/COMM.md.
//
// CI gates the emitted BENCH_exchange.json against the committed
// reports/BENCH_exchange.baseline.json via tools/bench_compare.py: the
// backends must stay bit-identical on parents (counted valid roots) and the
// butterfly's inter-supernode reduction at the largest mesh must not
// regress.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bfs/runner.hpp"
#include "sim/exchange.hpp"

using namespace sunbfs;

namespace {

struct ExchangeRow {
  int ranks = 0;
  std::string backend;
  int stages = 0;
  uint64_t a2a_bytes = 0;
  uint64_t inter_bytes = 0;
  double inter_reduction_pct = 0;
  uint64_t valid_roots = 0;
  uint64_t staging_allocs_steady = 0;
};

/// Compact sunbfs.bench/1 summary (BENCH_exchange.json, or
/// $SUNBFS_BENCH_OUT) for the CI regression gate: the byte counts are
/// deterministic at the pinned scale/seed, so tools/bench_compare.py can
/// diff them tightly against reports/BENCH_exchange.baseline.json.
bool write_bench_json(const char* path, int base_scale,
                      const std::vector<ExchangeRow>& rows) {
  FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sunbfs.bench/1\",\n");
  std::fprintf(f, "  \"bench\": \"exchange\",\n");
  std::fprintf(f, "  \"scale\": %d,\n", base_scale);
  std::fprintf(f, "  \"metrics\": {\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const char* sep = i + 1 < rows.size() ? "," : "";
    const std::string tag = r.backend + "_ranks" + std::to_string(r.ranks);
    std::fprintf(f, "    \"alltoallv_bytes_%s\": %llu,\n", tag.c_str(),
                 (unsigned long long)r.a2a_bytes);
    std::fprintf(f, "    \"alltoallv_inter_bytes_%s\": %llu,\n", tag.c_str(),
                 (unsigned long long)r.inter_bytes);
    std::fprintf(f, "    \"inter_reduction_pct_%s\": %.6f%s\n", tag.c_str(),
                 r.inter_reduction_pct, sep);
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_exchange");
  bench::header("Exchange backends",
                "staged-exchange ablation: direct vs butterfly vs 2D-CA");
  bench::paper_line(
      "the production system drives the alltoallv through a hardware-assisted "
      "direct exchange; staged software plans trade extra cheap intra-"
      "supernode hops for in-flight merging before the oversubscribed links");

  const int base_scale = 12 + bench::scale_delta();
  const std::vector<sim::MeshShape> meshes = {{2, 2}, {2, 4}, {4, 4}, {4, 8}};
  const sim::ExchangeBackend backends[] = {sim::ExchangeBackend::Direct,
                                           sim::ExchangeBackend::Butterfly,
                                           sim::ExchangeBackend::TwoDCA};

  std::printf("%6s %10s | %7s %12s %12s %12s | %10s %12s\n", "ranks",
              "backend", "stages", "a2a bytes", "inter bytes", "vs direct",
              "score s", "score inter");

  auto& rep = bench::report();
  std::vector<ExchangeRow> rows;
  for (size_t mi = 0; mi < meshes.size(); ++mi) {
    const sim::MeshShape mesh = meshes[mi];
    const sim::Topology topo(mesh);
    uint64_t direct_inter = 0;
    for (sim::ExchangeBackend backend : backends) {
      bfs::RunnerConfig cfg;
      cfg.graph.scale = base_scale + int(mi);
      cfg.graph.seed = 11;
      cfg.engine = bfs::EngineKind::OneD;
      cfg.num_roots = 2;
      cfg.validate = true;
      // Pin top-down so every level exercises the exchange under test.
      cfg.bfs1d.pull_ratio = 2.0;
      cfg.bfs1d.exchange.backend = backend;
      cfg.bfs.exchange.backend = backend;
      auto result = bfs::run_graph500(topo, cfg);

      const auto plan =
          sim::ExchangePlan::build(backend, mesh.ranks(), mesh);
      // Score one nominal exchange: the measured per-rank payload of the
      // direct run would do, but a fixed 1 MiB keeps the score comparable
      // across backends and machines.
      const auto score = sim::score_exchange_plan(topo, plan, 1 << 20);

      if (backend == sim::ExchangeBackend::Direct)
        direct_inter = result.search_alltoallv_inter_bytes;
      const double delta =
          direct_inter
              ? 100.0 * (1.0 - double(result.search_alltoallv_inter_bytes) /
                                   double(direct_inter))
              : 0.0;
      std::printf("%6d %10s | %7d %12llu %12llu %11.1f%% | %10.6f %12llu\n",
                  mesh.ranks(), sim::exchange_backend_name(backend),
                  plan.stages(),
                  (unsigned long long)result.search_alltoallv_bytes,
                  (unsigned long long)result.search_alltoallv_inter_bytes,
                  delta, score.modeled_s,
                  (unsigned long long)score.inter_bytes);

      const std::string row = "exchange.ranks" + std::to_string(mesh.ranks()) +
                              "." + sim::exchange_backend_name(backend) + ".";
      rep.add_counter(row + "stages", uint64_t(plan.stages()));
      rep.add_counter(row + "alltoallv_bytes", result.search_alltoallv_bytes);
      rep.add_counter(row + "alltoallv_inter_bytes",
                      result.search_alltoallv_inter_bytes);
      rep.gauge(row + "inter_reduction_pct", delta);
      rep.gauge(row + "score_modeled_s", score.modeled_s);
      rep.add_counter(row + "score_inter_bytes", score.inter_bytes);
      const uint64_t valid_roots = [&] {
        uint64_t n = 0;
        for (const auto& r : result.runs)
          if (r.valid) ++n;
        return n;
      }();
      rep.add_counter(row + "valid_roots", valid_roots);
      rep.add_counter(row + "staging_allocs_steady",
                      result.staging_allocs_steady);
      rows.push_back(ExchangeRow{mesh.ranks(),
                                 sim::exchange_backend_name(backend),
                                 plan.stages(), result.search_alltoallv_bytes,
                                 result.search_alltoallv_inter_bytes, delta,
                                 valid_roots,
                                 result.staging_allocs_steady});
    }
  }

  // Self-gating shape checks (CI runs the binary before the baseline diff):
  // every backend must validate every root, the resident pools must not
  // grow past warmup, and at the largest mesh both staged plans must beat
  // direct on inter-supernode bytes.
  bool ok = true;
  for (const auto& r : rows) {
    if (r.valid_roots != 2) {
      std::printf("FAIL: %s at %d ranks validated %llu/2 roots\n",
                  r.backend.c_str(), r.ranks,
                  (unsigned long long)r.valid_roots);
      ok = false;
    }
    if (r.staging_allocs_steady != 0) {
      std::printf("FAIL: %s at %d ranks grew staging %llu times past "
                  "warmup\n",
                  r.backend.c_str(), r.ranks,
                  (unsigned long long)r.staging_allocs_steady);
      ok = false;
    }
  }
  const int largest = meshes.back().ranks();
  for (const auto& r : rows) {
    if (r.ranks != largest || r.backend == "direct") continue;
    if (r.inter_reduction_pct <= 0) {
      std::printf("FAIL: %s at the largest mesh (%d ranks) sent %.1f%% MORE "
                  "inter-supernode bytes than direct\n",
                  r.backend.c_str(), largest, -r.inter_reduction_pct);
      ok = false;
    }
  }

  const char* out = std::getenv("SUNBFS_BENCH_OUT");
  const char* path = out ? out : "BENCH_exchange.json";
  if (write_bench_json(path, base_scale, rows))
    std::printf("bench summary: wrote %s\n", path);
  else
    std::printf("bench summary: FAILED writing %s\n", path);

  bench::shape_line(
      "all backends validate bit-identically; at the largest mesh both "
      "staged plans send fewer inter-supernode bytes than the direct "
      "alltoallv — 2D-CA with two stages, the butterfly with log2(P) — "
      "while paying more total (mostly intra-supernode) bytes for the hops");
  const int rc = bench::finish();
  return ok ? rc : 1;
}
