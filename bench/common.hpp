#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

/// Shared helpers for the figure/table reproduction benches.
///
/// Every bench prints:
///  - a `paper:` line quoting what the original exhibit showed,
///  - the regenerated rows/series on our simulated substrate,
///  - a `shape:` line stating the qualitative claim that must hold.
/// Scales default to sizes that run in seconds on one host core; set
/// SUNBFS_BENCH_SCALE_DELTA=+k to enlarge every experiment by k scales.
///
/// Every bench also speaks the observability protocol of
/// docs/OBSERVABILITY.md: call init(argc, argv) first and return through
/// finish().  `--metrics-out PATH` then writes every number the bench
/// printed (deposited via report()) as a sunbfs.metrics/1 JSON file —
/// the machine-readable side tools/regen_experiments.py folds back into
/// EXPERIMENTS.md — and `--trace-out PATH` writes a Chrome trace of the
/// run for Perfetto.
namespace sunbfs::bench {

/// Integer knob from the environment with a default.
inline int env_int(const char* name, int def) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : def;
}

/// Global scale adjustment applied by every bench.
inline int scale_delta() { return env_int("SUNBFS_BENCH_SCALE_DELTA", 0); }

inline void header(const char* exhibit, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", exhibit, what);
  std::printf("==============================================================\n");
}

inline void paper_line(const char* text) { std::printf("paper: %s\n", text); }
inline void shape_line(const char* text) { std::printf("shape: %s\n\n", text); }

namespace detail {
inline std::string& metrics_path() {
  static std::string p;
  return p;
}
inline std::string& trace_path() {
  static std::string p;
  return p;
}
}  // namespace detail

/// The bench's metrics report.  Benches deposit the same numbers they print
/// (keys are documented per exhibit in EXPERIMENTS.md); finish() serializes
/// it when --metrics-out was given.
inline obs::Report& report() {
  static obs::Report r;
  return r;
}

/// Parse the observability flags (--metrics-out PATH, --trace-out PATH).
/// Call first in main; enables the tracer when a trace is requested.
inline void init(int argc, char** argv, const char* tool) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0)
      detail::metrics_path() = argv[i + 1];
    else if (std::strcmp(argv[i], "--trace-out") == 0)
      detail::trace_path() = argv[i + 1];
  }
  if (!detail::trace_path().empty()) obs::Tracer::instance().enable();
  report().info("tool", tool);
  report().info("scale_delta", int64_t(scale_delta()));
}

/// Write the requested JSON artifacts and pass `code` through (so benches
/// can `return bench::finish(code);`).
inline int finish(int code = 0) {
  if (!detail::metrics_path().empty()) {
    if (report().write_file(detail::metrics_path()))
      std::printf("metrics: wrote %s\n", detail::metrics_path().c_str());
    else {
      std::printf("metrics: FAILED writing %s\n",
                  detail::metrics_path().c_str());
      if (code == 0) code = 1;
    }
  }
  if (!detail::trace_path().empty()) {
    if (obs::Tracer::instance().write_chrome_trace_file(detail::trace_path()))
      std::printf("trace: wrote %zu events to %s\n",
                  obs::Tracer::instance().event_count(),
                  detail::trace_path().c_str());
    else {
      std::printf("trace: FAILED writing %s\n", detail::trace_path().c_str());
      if (code == 0) code = 1;
    }
  }
  return code;
}

}  // namespace sunbfs::bench
