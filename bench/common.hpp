#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

/// Shared helpers for the figure/table reproduction benches.
///
/// Every bench prints:
///  - a `paper:` line quoting what the original exhibit showed,
///  - the regenerated rows/series on our simulated substrate,
///  - a `shape:` line stating the qualitative claim that must hold.
/// Scales default to sizes that run in seconds on one host core; set
/// SUNBFS_BENCH_SCALE_DELTA=+k to enlarge every experiment by k scales.
namespace sunbfs::bench {

/// Integer knob from the environment with a default.
inline int env_int(const char* name, int def) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : def;
}

/// Global scale adjustment applied by every bench.
inline int scale_delta() { return env_int("SUNBFS_BENCH_SCALE_DELTA", 0); }

inline void header(const char* exhibit, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", exhibit, what);
  std::printf("==============================================================\n");
}

inline void paper_line(const char* text) { std::printf("paper: %s\n", text); }
inline void shape_line(const char* text) { std::printf("shape: %s\n\n", text); }

}  // namespace sunbfs::bench
