// Sync-vs-async crossover: the level-synchronous engines pay at least one
// collective round per BFS level, so their round count scales with graph
// diameter; the relaxed-frontier engine (bfs/bfsasync.hpp) drains each
// rank's worklist to a local fixpoint between exchanges, so its round count
// scales with the rank topology instead.  This bench sweeps the diameter
// axis with the deterministic lattice generators (graph/lattice.hpp) — a
// path (diameter n-1), a tall grid, a torus — plus an R-MAT input at the
// headline regime (diameter ~ log n) and compares each engine's collective
// rounds, wire bytes and modeled time at a fixed mesh.
//
// Self-gates (CI runs the binary before the baseline diff):
//  * on the diameter >= 4096 lattices the async engine must finish with
//    >= 10x fewer collective calls than the level-synchronous 1D engine
//    AND lower modeled time (max-rank compute CPU + modeled network);
//  * on R-MAT, where level synchrony is cheap and relaxation only adds
//    speculation, async must stay within 1.25x of the best sync engine.
//
// The emitted BENCH_async.json carries only schedule-independent metrics
// (rounds, collective calls, alltoallv bytes, modeled network seconds —
// deterministic at the pinned scale/seed by the engine's bit-determinism
// guarantee), so CI diffs it tightly against
// reports/BENCH_async.baseline.json via tools/bench_compare.py.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bfs/engine.hpp"
#include "graph/lattice.hpp"
#include "graph/rmat.hpp"
#include "partition/classify.hpp"
#include "sim/runtime.hpp"

using namespace sunbfs;

namespace {

// One engine's traversal of one input, measured on rank 0 as deltas of the
// per-rank CommStats taken around the engine run only (partition builds and
// the post-run roll-up excluded).
struct Meas {
  int rounds = 0;                ///< levels (sync) or exchange rounds (async)
  uint64_t collective_calls = 0; ///< every collective the traversal entered
  uint64_t a2a_bytes = 0;        ///< alltoallv payload bytes, rank 0
  double comm_modeled_s = 0;     ///< modeled network seconds (deterministic)
  double max_cpu_s = 0;          ///< slowest rank's compute CPU (measured)

  double modeled_total_s() const { return max_cpu_s + comm_modeled_s; }
};

uint64_t total_calls(const sim::CommStats& s) {
  uint64_t n = 0;
  for (int t = 0; t < sim::kCollectiveTypeCount; ++t)
    n += s.entry(sim::CollectiveType(t)).calls;
  return n;
}

using SliceFn = std::function<std::vector<graph::Edge>(int, int)>;

// Build the requested engine over per-rank slices and run one traversal.
Meas run_engine(sim::MeshShape mesh, uint64_t nv, graph::Vertex root,
                bfs::EngineKind kind, const SliceFn& slice_fn) {
  const partition::VertexSpace space{nv, mesh.ranks()};
  Meas meas;
  sim::run_spmd(sim::Topology(mesh), [&](sim::RankContext& ctx) {
    auto slice = slice_fn(ctx.rank, ctx.nranks());
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    bfs::EngineConfig ecfg;
    ecfg.kind = kind;
    ecfg.bfs15.threads_per_rank = 2;
    ecfg.bfs1d.threads_per_rank = 2;
    ecfg.async.threads_per_rank = 2;
    auto engine = bfs::make_engine(ctx, space, slice, degrees, ecfg);

    const uint64_t calls0 = total_calls(ctx.stats);
    const double modeled0 = ctx.stats.total_modeled_s();
    const uint64_t a2a0 =
        ctx.stats.entry(sim::CollectiveType::Alltoallv).bytes_sent;
    bfs::EngineRun r = engine->run(ctx, root);
    const uint64_t calls1 = total_calls(ctx.stats);
    const double modeled1 = ctx.stats.total_modeled_s();
    const uint64_t a2a1 =
        ctx.stats.entry(sim::CollectiveType::Alltoallv).bytes_sent;

    const double max_cpu = ctx.world.allreduce_max(r.cpu_s);
    if (ctx.rank == 0) {
      meas.rounds = r.rounds;
      meas.collective_calls = calls1 - calls0;
      meas.a2a_bytes = a2a1 - a2a0;
      meas.comm_modeled_s = modeled1 - modeled0;
      meas.max_cpu_s = max_cpu;
    }
  });
  return meas;
}

struct CrossoverRow {
  std::string input;
  uint64_t diameter = 0;
  std::string engine;
  Meas m;
};

/// Compact sunbfs.bench/1 summary (BENCH_async.json, or $SUNBFS_BENCH_OUT)
/// for the CI regression gate.  Only schedule-independent quantities go in:
/// rounds and collective calls are pinned by the engines' determinism, the
/// byte counts and modeled network seconds by the pinned scale/seed/mesh.
/// The measured CPU seconds stay out (they are host noise, reported via
/// --metrics-out only).
bool write_bench_json(const char* path, const std::vector<CrossoverRow>& rows) {
  FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sunbfs.bench/1\",\n");
  std::fprintf(f, "  \"bench\": \"async_crossover\",\n");
  std::fprintf(f, "  \"metrics\": {\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const char* sep = i + 1 < rows.size() ? "," : "";
    const std::string tag = r.input + "_" + r.engine;
    std::fprintf(f, "    \"rounds_%s\": %d,\n", tag.c_str(), r.m.rounds);
    std::fprintf(f, "    \"collective_calls_%s\": %llu,\n", tag.c_str(),
                 (unsigned long long)r.m.collective_calls);
    std::fprintf(f, "    \"alltoallv_bytes_%s\": %llu,\n", tag.c_str(),
                 (unsigned long long)r.m.a2a_bytes);
    std::fprintf(f, "    \"comm_modeled_us_%s\": %.3f%s\n", tag.c_str(),
                 r.m.comm_modeled_s * 1e6, sep);
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_async_crossover");
  bench::header("Sync-vs-async crossover",
                "collective rounds vs graph diameter, per engine");
  bench::paper_line(
      "the production BFS is level-synchronous — fine at diameter ~ log n, "
      "but every level costs a full collective round; an asynchronous "
      "relaxed traversal decouples rounds from levels and wins exactly when "
      "diameter dwarfs the rank count (high-diameter road/mesh inputs)");

  const sim::MeshShape mesh{2, 4};
  const int rmat_scale = 14 + bench::scale_delta();

  struct InputCase {
    std::string name;
    uint64_t nv;
    uint64_t diameter;
    graph::Vertex root;
    bool high_diameter;  ///< gated lattice regime (diameter >= 4096)
    std::vector<bfs::EngineKind> engines;
    SliceFn slice;
  };

  auto lattice_case = [](const char* name, graph::LatticeConfig cfg,
                         bool high_diameter) {
    return InputCase{
        name, cfg.num_vertices(), cfg.diameter(), 0, high_diameter,
        {bfs::EngineKind::OneD, bfs::EngineKind::Async},
        [cfg](int rank, int nranks) {
          const uint64_t m = cfg.num_edges();
          return graph::generate_lattice_range(
              cfg, m * uint64_t(rank) / uint64_t(nranks),
              m * uint64_t(rank + 1) / uint64_t(nranks));
        }};
  };

  graph::Graph500Config rcfg;
  rcfg.scale = rmat_scale;
  rcfg.seed = 11;
  const graph::Vertex rmat_root = graph::generate_rmat_range(rcfg, 0, 1)[0].u;

  std::vector<InputCase> inputs;
  inputs.push_back(lattice_case("path8192", graph::LatticeConfig::path(8192),
                                true));
  inputs.push_back(lattice_case("grid2x4096",
                                graph::LatticeConfig::grid(2, 4096), true));
  inputs.push_back(lattice_case("torus64x64",
                                graph::LatticeConfig::torus(64, 64), false));
  inputs.push_back(InputCase{
      "rmat" + std::to_string(rmat_scale), rcfg.num_vertices(), 0, rmat_root,
      false,
      {bfs::EngineKind::OneD, bfs::EngineKind::OneFiveD,
       bfs::EngineKind::Async},
      [rcfg](int rank, int nranks) {
        const uint64_t m = rcfg.num_edges();
        return graph::generate_rmat_range(
            rcfg, m * uint64_t(rank) / uint64_t(nranks),
            m * uint64_t(rank + 1) / uint64_t(nranks));
      }});

  std::printf("%12s %9s %7s | %7s %10s %12s | %11s %11s %11s\n", "input",
              "diameter", "engine", "rounds", "coll calls", "a2a bytes",
              "comm model s", "max cpu s", "modeled s");

  auto& rep = bench::report();
  std::vector<CrossoverRow> rows;
  bool ok = true;
  for (const auto& in : inputs) {
    Meas by_kind[3];
    for (bfs::EngineKind kind : in.engines) {
      const Meas m = run_engine(mesh, in.nv, in.root, kind, in.slice);
      by_kind[int(kind)] = m;
      const char* ename = bfs::engine_kind_name(kind);
      std::printf("%12s %9llu %7s | %7d %10llu %12llu | %11.6f %11.6f "
                  "%11.6f\n",
                  in.name.c_str(), (unsigned long long)in.diameter, ename,
                  m.rounds, (unsigned long long)m.collective_calls,
                  (unsigned long long)m.a2a_bytes, m.comm_modeled_s,
                  m.max_cpu_s, m.modeled_total_s());

      const std::string key = "crossover." + in.name + "." + ename + ".";
      rep.add_counter(key + "rounds", uint64_t(m.rounds));
      rep.add_counter(key + "collective_calls", m.collective_calls);
      rep.add_counter(key + "alltoallv_bytes", m.a2a_bytes);
      rep.gauge(key + "comm_modeled_s", m.comm_modeled_s);
      rep.gauge(key + "max_cpu_s", m.max_cpu_s);
      rep.gauge(key + "modeled_total_s", m.modeled_total_s());
      rep.add_counter("crossover." + in.name + ".diameter", in.diameter);

      // The engine's tag in the sanitized JSON key namespace ("1.5d" would
      // put a dot inside the metric name).
      std::string tag = ename;
      std::replace(tag.begin(), tag.end(), '.', '_');
      rows.push_back(CrossoverRow{in.name, in.diameter, tag, m});
    }

    const Meas& sync1d = by_kind[int(bfs::EngineKind::OneD)];
    const Meas& async = by_kind[int(bfs::EngineKind::Async)];
    if (in.high_diameter) {
      if (async.collective_calls * 10 > sync1d.collective_calls) {
        std::printf("FAIL: %s: async used %llu collective calls, more than "
                    "1/10 of 1d's %llu\n",
                    in.name.c_str(),
                    (unsigned long long)async.collective_calls,
                    (unsigned long long)sync1d.collective_calls);
        ok = false;
      }
      if (async.modeled_total_s() >= sync1d.modeled_total_s()) {
        std::printf("FAIL: %s: async modeled %.6fs, not below 1d's %.6fs\n",
                    in.name.c_str(), async.modeled_total_s(),
                    sync1d.modeled_total_s());
        ok = false;
      }
    } else if (in.engines.size() == 3) {  // the R-MAT point
      const Meas& sync15 = by_kind[int(bfs::EngineKind::OneFiveD)];
      const double best_sync =
          std::min(sync1d.modeled_total_s(), sync15.modeled_total_s());
      const double tax = async.modeled_total_s() / best_sync;
      std::printf("%12s relaxation tax vs best sync engine: %.3fx\n",
                  in.name.c_str(), tax);
      rep.gauge("crossover." + in.name + ".async_tax_vs_best_sync", tax);
      if (tax > 1.25) {
        std::printf("FAIL: %s: async modeled %.6fs is %.3fx the best sync "
                    "engine's %.6fs (limit 1.25x)\n",
                    in.name.c_str(), async.modeled_total_s(), tax, best_sync);
        ok = false;
      }
    }
  }

  const char* out = std::getenv("SUNBFS_BENCH_OUT");
  const char* path = out ? out : "BENCH_async.json";
  if (write_bench_json(path, rows))
    std::printf("bench summary: wrote %s\n", path);
  else
    std::printf("bench summary: FAILED writing %s\n", path);

  bench::shape_line(
      "on the diameter >= 4096 lattices the async engine finishes in >= 10x "
      "fewer collective calls than the level-synchronous 1D engine and less "
      "modeled time; on R-MAT, where diameter ~ log n, level synchrony is "
      "already cheap and async pays a bounded (<= 1.25x) relaxation tax");
  const int rc = bench::finish();
  return ok ? rc : 1;
}
