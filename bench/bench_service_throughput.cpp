// Graph query service throughput: one resident GraphSession serving seeded
// synthetic workloads through the batching broker (docs/SERVICE.md).
//
// The paper's machine serves one giant traversal at a time; the ROADMAP
// north star is production traffic, so this bench measures the serving
// layer the same way a service SLO would: offered load sweeps (open loop,
// Poisson arrivals) plus a closed-loop mixed BFS/SSSP point, reporting QPS,
// p50/p95/p99 latency on the modeled clock, batch occupancy and expired
// counts.  The low-load point runs twice and must reproduce bit-identically
// — the whole pipeline is deterministic in its seeds, so any drift is a
// determinism regression and the bench fails.
//
// Besides the usual --metrics-out report, writes a compact sunbfs.bench/1
// summary (BENCH_service.json, or $SUNBFS_BENCH_OUT) that
// tools/bench_compare.py diffs across checkouts.
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "service/session.hpp"

using namespace sunbfs;

namespace {

struct LoadPoint {
  std::string name;
  service::WorkloadConfig workload;
  /// Session to serve against (fault-mode points use the faulty session)
  /// and the broker policy for this point (fault points flip shedding on).
  const service::GraphSession* session = nullptr;
  service::BrokerConfig broker;
  service::ServiceReport report;
};

bool write_bench_json(const char* path, int scale, int ranks,
                      const std::vector<LoadPoint>& points) {
  FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sunbfs.bench/1\",\n");
  std::fprintf(f, "  \"bench\": \"service_throughput\",\n");
  std::fprintf(f, "  \"scale\": %d,\n  \"ranks\": %d,\n", scale, ranks);
  std::fprintf(f, "  \"metrics\": {\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const char* sep = i + 1 < points.size() ? "," : "";
    std::fprintf(f, "    \"qps_%s\": %.6f,\n", p.name.c_str(), p.report.qps);
    std::fprintf(f, "    \"latency_p50_ms_%s\": %.6f,\n", p.name.c_str(),
                 p.report.latency_p50_s * 1e3);
    std::fprintf(f, "    \"latency_p95_ms_%s\": %.6f,\n", p.name.c_str(),
                 p.report.latency_p95_s * 1e3);
    std::fprintf(f, "    \"latency_p99_ms_%s\": %.6f,\n", p.name.c_str(),
                 p.report.latency_p99_s * 1e3);
    std::fprintf(f, "    \"batch_occupancy_%s\": %.6f,\n", p.name.c_str(),
                 p.report.mean_batch_occupancy);
    std::fprintf(f, "    \"expired_%s\": %llu,\n", p.name.c_str(),
                 (unsigned long long)p.report.expired_total());
    // Fault-mode counters (0 on the clean points); tools/bench_compare.py
    // diffs these at a wider tolerance band than the latency gauges.
    std::fprintf(f, "    \"retries_%s\": %llu,\n", p.name.c_str(),
                 (unsigned long long)p.report.retried);
    std::fprintf(f, "    \"sheds_%s\": %llu,\n", p.name.c_str(),
                 (unsigned long long)p.report.shed);
    std::fprintf(f, "    \"failed_%s\": %llu,\n", p.name.c_str(),
                 (unsigned long long)p.report.failed);
    // Distance-oracle effectiveness (0 on cache-off points); hit_rate/hits
    // are higher-is-better in tools/bench_compare.py.
    std::fprintf(f, "    \"hits_%s\": %llu,\n", p.name.c_str(),
                 (unsigned long long)p.report.cache.hits);
    // Streaming-mutation telemetry, emitted only for mutating points so the
    // summary stays additive against pre-mutation baselines (asymmetric keys
    // are warnings, not gates, in tools/bench_compare.py).
    const bool mutating = p.report.mutate.batches > 0;
    std::fprintf(f, "    \"hit_rate_%s\": %.6f%s\n", p.name.c_str(),
                 p.report.cache.hit_rate(), mutating ? "," : sep);
    if (mutating) {
      const auto& m = p.report.mutate;
      std::fprintf(f, "    \"mutate_batches_%s\": %llu,\n", p.name.c_str(),
                   (unsigned long long)m.batches);
      std::fprintf(f, "    \"mutate_arcs_inserted_%s\": %llu,\n",
                   p.name.c_str(), (unsigned long long)m.inserted_arcs);
      std::fprintf(f, "    \"mutate_arcs_deleted_%s\": %llu,\n",
                   p.name.c_str(), (unsigned long long)m.deleted_arcs);
      std::fprintf(f, "    \"mutate_repair_rounds_%s\": %llu,\n",
                   p.name.c_str(), (unsigned long long)m.repair_rounds);
      std::fprintf(f, "    \"mutate_sketch_repairs_%s\": %llu%s\n",
                   p.name.c_str(), (unsigned long long)m.sketch_repairs, sep);
    }
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

void print_point(const LoadPoint& p) {
  const auto& r = p.report;
  std::printf(
      "%-14s %8.1f qps  p50 %8.4f ms  p95 %8.4f ms  p99 %8.4f ms  "
      "occ %5.2f  expired %llu  retries %llu  shed %llu  failed %llu  "
      "hit%% %5.1f\n",
      p.name.c_str(), r.qps, r.latency_p50_s * 1e3, r.latency_p95_s * 1e3,
      r.latency_p99_s * 1e3, r.mean_batch_occupancy,
      (unsigned long long)r.expired_total(), (unsigned long long)r.retried,
      (unsigned long long)r.shed, (unsigned long long)r.failed,
      r.cache.hit_rate() * 100.0);
}

bool same_stats(const service::ServiceReport& a,
                const service::ServiceReport& b) {
  return a.completed == b.completed && a.expired_total() == b.expired_total() &&
         a.makespan_s == b.makespan_s && a.qps == b.qps &&
         a.latency_mean_s == b.latency_mean_s &&
         a.latency_p50_s == b.latency_p50_s &&
         a.latency_p95_s == b.latency_p95_s &&
         a.latency_p99_s == b.latency_p99_s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_service_throughput");
  bench::header("Service throughput (ROADMAP serving layer)",
                "batched multi-root query service under offered load");
  bench::paper_line(
      "the target machine serves 281T-edge traversals; a production serving "
      "layer must amortize collectives across concurrent queries");

  service::ServiceConfig cfg;
  cfg.graph.scale = 11 + bench::scale_delta();
  cfg.graph.seed = 2026;
  // Pinned (not auto): the modeled compute cost scales with the pool size,
  // so the committed reports/BENCH_service.baseline.json is only comparable
  // across machines with the thread count fixed.
  cfg.threads_per_rank = 2;
  sim::Topology topo(sim::MeshShape{2, 2});
  service::GraphSession session(topo, cfg);

  // Fault-mode session: the same resident graph under a deterministic
  // storm (stragglers + corruptions + a rank failure per engine run) with
  // in-engine recovery and broker retries — the degraded-mode SLO story
  // from docs/SERVICE.md.
  service::ServiceConfig faulty_cfg = cfg;
  faulty_cfg.faults =
      sim::FaultPlan::random(/*seed=*/11, topo.mesh().ranks(),
                             /*stragglers=*/1, /*corruptions=*/2,
                             /*failures=*/1);
  service::GraphSession faulty_session(topo, faulty_cfg);

  // Cached session: the distance oracle on, sized for the zipfian hot set
  // (landmarks pin the 16 hottest pool roots; leases outlast the run so the
  // point measures steady-state hit rate, not churn — test_oracle covers
  // expiry).  The zipf_nocache point serves the identical workload through
  // `session` as the ablation leg.
  service::ServiceConfig cached_cfg = cfg;
  cached_cfg.cache.enabled = true;
  cached_cfg.cache.tree_capacity = 64;
  cached_cfg.cache.landmarks = 16;
  cached_cfg.cache.tree_lease_s = 60.0;
  cached_cfg.cache.sketch_lease_s = 60.0;
  service::GraphSession cached_session(topo, cached_cfg);

  // Mutating session: the cached config plus a steady mutation feed — one
  // batch applied (and incrementally repaired, sketch included) per 16
  // admitted queries.  Serving the same zipfian workload as zipf_cache
  // quantifies the streaming-ingest tax on QPS/p95 relative to the static
  // cached point; the service.mutate.* keys pin the repair volume so a
  // repair regression (e.g. cascades ballooning) shows up in the bench gate
  // even when latency noise would hide it.
  service::ServiceConfig mutating_cfg = cached_cfg;
  mutating_cfg.mutation.enabled = true;
  mutating_cfg.mutation.every = 16;
  mutating_cfg.mutation.max_batches = 64;
  mutating_cfg.mutation.inserts_per_batch = 6;
  mutating_cfg.mutation.deletes_per_batch = 6;
  service::GraphSession mutating_session(topo, mutating_cfg);

  service::BrokerConfig broker;  // width 64, 5 ms age, 1024-deep queue

  const uint64_t queries =
      uint64_t(bench::env_int("SUNBFS_SERVICE_QUERIES", 96));
  std::vector<LoadPoint> points;
  {
    LoadPoint p;
    p.name = "open_low";
    p.workload.mode = service::ArrivalMode::Open;
    p.workload.seed = 7;
    p.workload.num_queries = queries;
    p.workload.rate_qps = 500;
    points.push_back(std::move(p));
  }
  {
    LoadPoint p;
    p.name = "open_high";
    p.workload.mode = service::ArrivalMode::Open;
    p.workload.seed = 7;
    p.workload.num_queries = queries;
    p.workload.rate_qps = 20000;
    points.push_back(std::move(p));
  }
  {
    LoadPoint p;
    p.name = "closed_mixed";
    p.workload.mode = service::ArrivalMode::Closed;
    p.workload.seed = 11;
    p.workload.num_queries = queries;
    p.workload.users = 16;
    p.workload.think_s = 1e-3;
    p.workload.sssp_fraction = 0.25;
    points.push_back(std::move(p));
  }
  {
    // Degraded mode at the open_high load: recovery replay + retry backoff
    // stretch batches, quantifying the fault tax on QPS and tail latency.
    LoadPoint p;
    p.name = "fault_recover";
    p.workload.mode = service::ArrivalMode::Open;
    p.workload.seed = 7;
    p.workload.num_queries = queries;
    p.workload.rate_qps = 20000;
    p.session = &faulty_session;
    points.push_back(std::move(p));
  }
  // Burst overload under the same fault storm, shedding off vs on: the
  // shedding point must keep the admitted p99 bounded while the unshedded
  // baseline queues everything toward the tail.
  service::BrokerConfig narrow = broker;
  narrow.batch_width = 8;
  {
    LoadPoint p;
    p.name = "fault_unshed";
    p.workload.mode = service::ArrivalMode::Open;
    p.workload.seed = 7;
    p.workload.num_queries = queries;
    p.workload.rate_qps = 1e6;
    p.session = &faulty_session;
    p.broker = narrow;
    points.push_back(std::move(p));
  }
  {
    LoadPoint p;
    p.name = "fault_shed";
    p.workload.mode = service::ArrivalMode::Open;
    p.workload.seed = 7;
    p.workload.num_queries = queries;
    p.workload.rate_qps = 1e6;
    p.session = &faulty_session;
    p.broker = narrow;
    p.broker.shed.enabled = true;
    p.broker.shed.queue_highwater = 0.02;
    p.broker.shed.min_samples = 4;
    points.push_back(std::move(p));
  }
  // Zipfian-root skew (YCSB-style hot set) with a point-to-point mix, cache
  // on vs off on the same workload: the headline for the distance oracle —
  // hot roots hit cached trees, hot targets close on landmark bounds.
  service::WorkloadConfig zipf;
  // Closed loop: users resubmit on completion, so throughput self-limits to
  // service speed and every cache hit (instant completion) buys QPS
  // directly — the honest way to measure a cache, where an open loop's
  // makespan is dominated by the fixed arrival span instead.
  zipf.mode = service::ArrivalMode::Closed;
  zipf.seed = 13;
  zipf.num_queries = queries;
  zipf.users = 16;
  zipf.think_s = 1e-3;
  zipf.root_dist = service::RootDist::Zipfian;
  zipf.zipf_theta = 0.99;
  zipf.distance_fraction = 0.2;
  zipf.reachable_fraction = 0.1;
  {
    LoadPoint p;
    p.name = "zipf_cache";
    p.workload = zipf;
    p.session = &cached_session;
    points.push_back(std::move(p));
  }
  {
    LoadPoint p;
    p.name = "zipf_nocache";
    p.workload = zipf;
    points.push_back(std::move(p));
  }
  {
    // Same zipfian workload against the mutating session: the delta vs
    // zipf_cache is the cost of epoch-boundary ingest + incremental repair.
    LoadPoint p;
    p.name = "mutating";
    p.workload = zipf;
    p.session = &mutating_session;
    points.push_back(std::move(p));
  }

  std::printf("SCALE %d graph resident on %d ranks; %llu queries per point\n\n",
              cfg.graph.scale, topo.mesh().ranks(),
              (unsigned long long)queries);

  for (auto& p : points) {
    const service::GraphSession& s = p.session != nullptr ? *p.session
                                                          : session;
    p.report = s.serve(p.workload, p.broker);
    if (!p.report.spmd.ok()) {
      std::printf("point %s failed:\n", p.name.c_str());
      for (const auto& e : p.report.spmd.errors)
        std::printf("  %s\n", e.c_str());
      return bench::finish(1);
    }
    print_point(p);
  }

  // Determinism check: the low-load point must replay bit-identically.
  service::ServiceReport replay =
      session.serve(points[0].workload, points[0].broker);
  bool reproducible = same_stats(points[0].report, replay);
  std::printf("\nreplay of %s: %s\n", points[0].name.c_str(),
              reproducible ? "bit-identical latency stats"
                           : "MISMATCH — determinism regression");

  // Degraded-mode acceptance: under the burst overload, the shedding point
  // must actually shed and keep the admitted p99 no worse than the
  // unshedded baseline that drains the whole queue.
  const service::ServiceReport* unshed = nullptr;
  const service::ServiceReport* shed = nullptr;
  for (const auto& p : points) {
    if (p.name == "fault_unshed") unshed = &p.report;
    if (p.name == "fault_shed") shed = &p.report;
  }
  bool shed_bounded = unshed != nullptr && shed != nullptr &&
                      shed->shed > 0 &&
                      shed->latency_p99_s <= unshed->latency_p99_s;
  std::printf("shedding under overload: %s (p99 %.4f ms shed vs %.4f ms "
              "unshed, %llu shed)\n",
              shed_bounded ? "bounded p99" : "NOT BOUNDED — regression",
              shed != nullptr ? shed->latency_p99_s * 1e3 : 0.0,
              unshed != nullptr ? unshed->latency_p99_s * 1e3 : 0.0,
              shed != nullptr ? (unsigned long long)shed->shed : 0ull);

  // Oracle acceptance: on the zipfian point the cache must hit at least half
  // of its probes AND beat the cache-off ablation on QPS, and the cached
  // point must replay bit-identically (hits included) — caching must not
  // cost determinism.
  const service::ServiceReport* zc = nullptr;
  const service::ServiceReport* zn = nullptr;
  const LoadPoint* zc_point = nullptr;
  for (const auto& p : points) {
    if (p.name == "zipf_cache") { zc = &p.report; zc_point = &p; }
    if (p.name == "zipf_nocache") zn = &p.report;
  }
  bool cache_wins = zc != nullptr && zn != nullptr &&
                    zc->cache.hit_rate() >= 0.5 && zc->qps > zn->qps;
  std::printf("distance oracle: %s (hit rate %.1f%%, %.1f qps cached vs %.1f "
              "uncached)\n",
              cache_wins ? "hit-rate + qps win" : "NOT WINNING — regression",
              zc != nullptr ? zc->cache.hit_rate() * 100.0 : 0.0,
              zc != nullptr ? zc->qps : 0.0, zn != nullptr ? zn->qps : 0.0);
  service::ServiceReport zc_replay =
      cached_session.serve(zc_point->workload, zc_point->broker);
  bool cache_reproducible = same_stats(*zc, zc_replay) &&
                            zc->cache.hits == zc_replay.cache.hits &&
                            zc->cache.probes == zc_replay.cache.probes;
  std::printf("replay of zipf_cache: %s\n",
              cache_reproducible ? "bit-identical (stats + cache counters)"
                                 : "MISMATCH — determinism regression");

  // Mutation acceptance: the mutating point must actually advance the graph
  // epoch (batches land between query admissions), complete its workload,
  // and replay bit-identically — mutation counters included, since the log
  // and repair schedule are pure functions of their seeds.
  const service::ServiceReport* mu = nullptr;
  const LoadPoint* mu_point = nullptr;
  for (const auto& p : points) {
    if (p.name == "mutating") { mu = &p.report; mu_point = &p; }
  }
  service::ServiceReport mu_replay =
      mutating_session.serve(mu_point->workload, mu_point->broker);
  bool mutate_ok = mu != nullptr && mu->mutate.batches > 0 &&
                   mu->mutate.epoch == mu->mutate.batches &&
                   mu->completed == mu_replay.completed &&
                   same_stats(*mu, mu_replay) &&
                   mu->mutate.inserted_arcs == mu_replay.mutate.inserted_arcs &&
                   mu->mutate.deleted_arcs == mu_replay.mutate.deleted_arcs &&
                   mu->mutate.repair_rounds == mu_replay.mutate.repair_rounds;
  std::printf("mutating point: %s (%llu batches, %llu arcs in, %llu arcs "
              "out, %llu sketch repairs)\n",
              mutate_ok ? "epochs advance + bit-identical replay"
                        : "MISMATCH — mutation regression",
              mu != nullptr ? (unsigned long long)mu->mutate.batches : 0ull,
              mu != nullptr ? (unsigned long long)mu->mutate.inserted_arcs
                            : 0ull,
              mu != nullptr ? (unsigned long long)mu->mutate.deleted_arcs
                            : 0ull,
              mu != nullptr ? (unsigned long long)mu->mutate.sketch_repairs
                            : 0ull);

  bench::shape_line(
      "higher offered load raises occupancy (collectives amortize over more "
      "queries per batch) and queueing pushes tail latency up; every point "
      "replays bit-identically from its seed");

  for (const auto& p : points) {
    bench::report().gauge("service." + p.name + ".qps", p.report.qps);
    bench::report().gauge("service." + p.name + ".latency_p50_s",
                          p.report.latency_p50_s);
    bench::report().gauge("service." + p.name + ".latency_p95_s",
                          p.report.latency_p95_s);
    bench::report().gauge("service." + p.name + ".latency_p99_s",
                          p.report.latency_p99_s);
    bench::report().gauge("service." + p.name + ".batch_occupancy",
                          p.report.mean_batch_occupancy);
    bench::report().add_counter("service." + p.name + ".expired",
                                p.report.expired_total());
    bench::report().add_counter("service." + p.name + ".retries",
                                p.report.retried);
    bench::report().add_counter("service." + p.name + ".shed", p.report.shed);
    bench::report().add_counter("service." + p.name + ".failed",
                                p.report.failed);
    bench::report().add_counter("service." + p.name + ".cache_hits",
                                p.report.cache.hits);
    bench::report().gauge("service." + p.name + ".cache_hit_rate",
                          p.report.cache.hit_rate());
    if (p.report.mutate.batches > 0) {
      const auto& m = p.report.mutate;
      bench::report().add_counter("service." + p.name + ".mutate.batches",
                                  m.batches);
      bench::report().add_counter(
          "service." + p.name + ".mutate.inserted_arcs", m.inserted_arcs);
      bench::report().add_counter("service." + p.name + ".mutate.deleted_arcs",
                                  m.deleted_arcs);
      bench::report().add_counter(
          "service." + p.name + ".mutate.repair_rounds", m.repair_rounds);
      bench::report().add_counter(
          "service." + p.name + ".mutate.sketch_repairs", m.sketch_repairs);
    }
  }

  const char* out = std::getenv("SUNBFS_BENCH_OUT");
  const char* path = out ? out : "BENCH_service.json";
  if (write_bench_json(path, cfg.graph.scale, topo.mesh().ranks(), points))
    std::printf("bench json: wrote %s\n", path);
  else {
    std::printf("bench json: FAILED writing %s\n", path);
    return bench::finish(1);
  }
  return bench::finish(reproducible && shed_bounded && cache_wins &&
                               cache_reproducible && mutate_ok
                           ? 0
                           : 1);
}
