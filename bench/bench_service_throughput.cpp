// Graph query service throughput: one resident GraphSession serving seeded
// synthetic workloads through the batching broker (docs/SERVICE.md).
//
// The paper's machine serves one giant traversal at a time; the ROADMAP
// north star is production traffic, so this bench measures the serving
// layer the same way a service SLO would: offered load sweeps (open loop,
// Poisson arrivals) plus a closed-loop mixed BFS/SSSP point, reporting QPS,
// p50/p95/p99 latency on the modeled clock, batch occupancy and expired
// counts.  The low-load point runs twice and must reproduce bit-identically
// — the whole pipeline is deterministic in its seeds, so any drift is a
// determinism regression and the bench fails.
//
// Besides the usual --metrics-out report, writes a compact sunbfs.bench/1
// summary (BENCH_service.json, or $SUNBFS_BENCH_OUT) that
// tools/bench_compare.py diffs across checkouts.
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "service/session.hpp"

using namespace sunbfs;

namespace {

struct LoadPoint {
  std::string name;
  service::WorkloadConfig workload;
  service::ServiceReport report;
};

bool write_bench_json(const char* path, int scale, int ranks,
                      const std::vector<LoadPoint>& points) {
  FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sunbfs.bench/1\",\n");
  std::fprintf(f, "  \"bench\": \"service_throughput\",\n");
  std::fprintf(f, "  \"scale\": %d,\n  \"ranks\": %d,\n", scale, ranks);
  std::fprintf(f, "  \"metrics\": {\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const char* sep = i + 1 < points.size() ? "," : "";
    std::fprintf(f, "    \"qps_%s\": %.6f,\n", p.name.c_str(), p.report.qps);
    std::fprintf(f, "    \"latency_p50_ms_%s\": %.6f,\n", p.name.c_str(),
                 p.report.latency_p50_s * 1e3);
    std::fprintf(f, "    \"latency_p95_ms_%s\": %.6f,\n", p.name.c_str(),
                 p.report.latency_p95_s * 1e3);
    std::fprintf(f, "    \"latency_p99_ms_%s\": %.6f,\n", p.name.c_str(),
                 p.report.latency_p99_s * 1e3);
    std::fprintf(f, "    \"batch_occupancy_%s\": %.6f,\n", p.name.c_str(),
                 p.report.mean_batch_occupancy);
    std::fprintf(f, "    \"expired_%s\": %llu%s\n", p.name.c_str(),
                 (unsigned long long)p.report.expired_total(), sep);
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

void print_point(const LoadPoint& p) {
  const auto& r = p.report;
  std::printf(
      "%-14s %8.1f qps  p50 %8.4f ms  p95 %8.4f ms  p99 %8.4f ms  "
      "occ %5.2f  expired %llu\n",
      p.name.c_str(), r.qps, r.latency_p50_s * 1e3, r.latency_p95_s * 1e3,
      r.latency_p99_s * 1e3, r.mean_batch_occupancy,
      (unsigned long long)r.expired_total());
}

bool same_stats(const service::ServiceReport& a,
                const service::ServiceReport& b) {
  return a.completed == b.completed && a.expired_total() == b.expired_total() &&
         a.makespan_s == b.makespan_s && a.qps == b.qps &&
         a.latency_mean_s == b.latency_mean_s &&
         a.latency_p50_s == b.latency_p50_s &&
         a.latency_p95_s == b.latency_p95_s &&
         a.latency_p99_s == b.latency_p99_s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "bench_service_throughput");
  bench::header("Service throughput (ROADMAP serving layer)",
                "batched multi-root query service under offered load");
  bench::paper_line(
      "the target machine serves 281T-edge traversals; a production serving "
      "layer must amortize collectives across concurrent queries");

  service::ServiceConfig cfg;
  cfg.graph.scale = 11 + bench::scale_delta();
  cfg.graph.seed = 2026;
  sim::Topology topo(sim::MeshShape{2, 2});
  service::GraphSession session(topo, cfg);

  service::BrokerConfig broker;  // width 64, 5 ms age, 1024-deep queue

  const uint64_t queries =
      uint64_t(bench::env_int("SUNBFS_SERVICE_QUERIES", 96));
  std::vector<LoadPoint> points;
  {
    LoadPoint p;
    p.name = "open_low";
    p.workload.mode = service::ArrivalMode::Open;
    p.workload.seed = 7;
    p.workload.num_queries = queries;
    p.workload.rate_qps = 500;
    points.push_back(std::move(p));
  }
  {
    LoadPoint p;
    p.name = "open_high";
    p.workload.mode = service::ArrivalMode::Open;
    p.workload.seed = 7;
    p.workload.num_queries = queries;
    p.workload.rate_qps = 20000;
    points.push_back(std::move(p));
  }
  {
    LoadPoint p;
    p.name = "closed_mixed";
    p.workload.mode = service::ArrivalMode::Closed;
    p.workload.seed = 11;
    p.workload.num_queries = queries;
    p.workload.users = 16;
    p.workload.think_s = 1e-3;
    p.workload.sssp_fraction = 0.25;
    points.push_back(std::move(p));
  }

  std::printf("SCALE %d graph resident on %d ranks; %llu queries per point\n\n",
              cfg.graph.scale, topo.mesh().ranks(),
              (unsigned long long)queries);

  for (auto& p : points) {
    p.report = session.serve(p.workload, broker);
    if (!p.report.spmd.ok()) {
      std::printf("point %s failed:\n", p.name.c_str());
      for (const auto& e : p.report.spmd.errors)
        std::printf("  %s\n", e.c_str());
      return bench::finish(1);
    }
    print_point(p);
  }

  // Determinism check: the low-load point must replay bit-identically.
  service::ServiceReport replay = session.serve(points[0].workload, broker);
  bool reproducible = same_stats(points[0].report, replay);
  std::printf("\nreplay of %s: %s\n", points[0].name.c_str(),
              reproducible ? "bit-identical latency stats"
                           : "MISMATCH — determinism regression");

  bench::shape_line(
      "higher offered load raises occupancy (collectives amortize over more "
      "queries per batch) and queueing pushes tail latency up; every point "
      "replays bit-identically from its seed");

  for (const auto& p : points) {
    bench::report().gauge("service." + p.name + ".qps", p.report.qps);
    bench::report().gauge("service." + p.name + ".latency_p50_s",
                          p.report.latency_p50_s);
    bench::report().gauge("service." + p.name + ".latency_p95_s",
                          p.report.latency_p95_s);
    bench::report().gauge("service." + p.name + ".latency_p99_s",
                          p.report.latency_p99_s);
    bench::report().gauge("service." + p.name + ".batch_occupancy",
                          p.report.mean_batch_occupancy);
    bench::report().add_counter("service." + p.name + ".expired",
                                p.report.expired_total());
  }

  const char* out = std::getenv("SUNBFS_BENCH_OUT");
  const char* path = out ? out : "BENCH_service.json";
  if (write_bench_json(path, cfg.graph.scale, topo.mesh().ranks(), points))
    std::printf("bench json: wrote %s\n", path);
  else {
    std::printf("bench json: FAILED writing %s\n", path);
    return bench::finish(1);
  }
  return bench::finish(reproducible ? 0 : 1);
}
